#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "util/sanitizers.hpp"

namespace apv::util {

/// Rounds `value` up to the next multiple of `alignment` (a power of two).
constexpr std::size_t align_up(std::size_t value, std::size_t alignment) {
  return (value + alignment - 1) & ~(alignment - 1);
}

/// True if `value` is a power of two (and nonzero).
constexpr bool is_pow2(std::size_t value) {
  return value != 0 && (value & (value - 1)) == 0;
}

/// Growable byte sink used by pack/unpack (migration, checkpointing).
/// Writes are appended; reads consume from a cursor. The format is raw
/// little-endian host bytes: both ends of a "migration" are the same
/// architecture by construction in this runtime.
class ByteBuffer {
 public:
  ByteBuffer() = default;

  /// Adopts an existing byte vector as the buffer contents (cursor at the
  /// start) — the zero-copy ingest for packed images arriving as message
  /// payloads.
  explicit ByteBuffer(std::vector<std::byte>&& bytes) noexcept
      : data_(std::move(bytes)) {}

  /// Releases the underlying vector without copying (the buffer is left
  /// empty). Lets a packed image move into a message payload.
  std::vector<std::byte> take() noexcept {
    std::vector<std::byte> out = std::move(data_);
    data_.clear();
    cursor_ = 0;
    return out;
  }

  void put_bytes(const void* src, std::size_t n) {
    const auto* p = static_cast<const std::byte*>(src);
    data_.insert(data_.end(), p, p + n);
  }

  /// put_bytes for sources that may carry ASan-poisoned ranges: packing a
  /// slot prefix legitimately copies quarantined (freed) heap blocks, so
  /// the copy must bypass shadow checks. Identical to put_bytes in plain
  /// builds.
  void put_bytes_raw(const void* src, std::size_t n) {
    const std::size_t old = data_.size();
    data_.resize(old + n);
    raw_memcpy(data_.data() + old, src, n);
  }

  template <typename T>
  void put(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    put_bytes(&value, sizeof value);
  }

  void get_bytes(void* dst, std::size_t n) {
    std::memcpy(dst, data_.data() + cursor_, n);
    cursor_ += n;
  }

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    get_bytes(&value, sizeof value);
    return value;
  }

  std::size_t size() const noexcept { return data_.size(); }
  std::size_t remaining() const noexcept { return data_.size() - cursor_; }
  const std::byte* data() const noexcept { return data_.data(); }
  void rewind() noexcept { cursor_ = 0; }
  void clear() noexcept {
    data_.clear();
    cursor_ = 0;
  }

 private:
  std::vector<std::byte> data_;
  std::size_t cursor_ = 0;
};

/// Non-owning read cursor over a byte range. The zero-copy counterpart of
/// ByteBuffer's read side: unpack paths consume packed images directly from
/// wherever the bytes already live (a message payload, a checkpoint-store
/// copy) without first copying them into an owning buffer.
class ByteReader {
 public:
  ByteReader(const void* data, std::size_t size) noexcept
      : data_(static_cast<const std::byte*>(data)), size_(size) {}
  /// Reads the buffer's unread remainder (from its cursor onward).
  explicit ByteReader(const ByteBuffer& buf) noexcept
      : ByteReader(buf.data() + (buf.size() - buf.remaining()),
                   buf.remaining()) {}

  void get_bytes(void* dst, std::size_t n) {
    std::memcpy(dst, data_ + cursor_, n);
    cursor_ += n;
  }

  /// get_bytes for destinations that may carry ASan-poisoned ranges
  /// (unpacking over a slot whose previous heap state quarantined freed
  /// blocks). Identical to get_bytes in plain builds; the caller reconciles
  /// shadow afterwards (SlotHeap::asan_reconcile).
  void get_bytes_raw(void* dst, std::size_t n) {
    raw_memcpy(dst, data_ + cursor_, n);
    cursor_ += n;
  }

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    get_bytes(&value, sizeof value);
    return value;
  }

  std::size_t remaining() const noexcept { return size_ - cursor_; }
  const std::byte* cursor() const noexcept { return data_ + cursor_; }
  void skip(std::size_t n) noexcept { cursor_ += n; }

 private:
  const std::byte* data_;
  std::size_t size_;
  std::size_t cursor_ = 0;
};

}  // namespace apv::util
