#include "util/error.hpp"

namespace apv::util {

const char* error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::Ok: return "Ok";
    case ErrorCode::InvalidArgument: return "InvalidArgument";
    case ErrorCode::OutOfMemory: return "OutOfMemory";
    case ErrorCode::NotSupported: return "NotSupported";
    case ErrorCode::NotFound: return "NotFound";
    case ErrorCode::AlreadyExists: return "AlreadyExists";
    case ErrorCode::LimitExceeded: return "LimitExceeded";
    case ErrorCode::IoError: return "IoError";
    case ErrorCode::BadState: return "BadState";
    case ErrorCode::CorruptImage: return "CorruptImage";
    case ErrorCode::MigrationRefused: return "MigrationRefused";
    case ErrorCode::CheckpointRefused: return "CheckpointRefused";
    case ErrorCode::ReductionOnEmptyPe: return "ReductionOnEmptyPe";
    case ErrorCode::CheckFailed: return "CheckFailed";
    case ErrorCode::Internal: return "Internal";
  }
  return "Unknown";
}

}  // namespace apv::util
