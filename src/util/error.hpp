#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace apv::util {

/// Status codes used across the runtime. Mirrors the style of MPI error
/// classes: a small closed enumeration that crosses module boundaries, with
/// the human-readable detail carried separately.
enum class ErrorCode : std::uint32_t {
  Ok = 0,
  InvalidArgument,
  OutOfMemory,
  NotSupported,      ///< operation valid in general but not for this method/mode
  NotFound,
  AlreadyExists,
  LimitExceeded,     ///< e.g. dlmopen namespace cap in PIPglobals
  IoError,           ///< shared-filesystem failures in FSglobals
  BadState,          ///< API called in the wrong lifecycle phase
  CorruptImage,      ///< program-image validation failure
  MigrationRefused,  ///< privatization method cannot migrate this rank
  CheckpointRefused, ///< method cannot take recoverable (buddy) checkpoints
  ReductionOnEmptyPe,///< PIEglobals user-op applied on a PE with no ranks
  CheckFailed,       ///< runtime correctness checker found a violation
                     ///< (collective mismatch, type/size mismatch, deadlock)
  Internal,
};

/// Stable string form of an ErrorCode ("NotSupported", ...).
const char* error_code_name(ErrorCode code) noexcept;

/// Exception type thrown by all apv modules. Carries a machine-checkable
/// code so tests and callers can distinguish refusals (NotSupported,
/// MigrationRefused) from genuine failures.
class ApvError : public std::runtime_error {
 public:
  ApvError(ErrorCode code, const std::string& what)
      : std::runtime_error(std::string(error_code_name(code)) + ": " + what),
        code_(code) {}

  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

/// Throws ApvError with the given code unless `cond` holds.
inline void require(bool cond, ErrorCode code, const std::string& what) {
  if (!cond) [[unlikely]] throw ApvError(code, what);
}

/// Literal-message overload: defers std::string construction to the throw,
/// so per-message fast paths don't pay an allocation per check.
inline void require(bool cond, ErrorCode code, const char* what) {
  if (!cond) [[unlikely]] throw ApvError(code, what);
}

}  // namespace apv::util
