#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace apv::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_log_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void log_message(LogLevel level, const char* module, const char* fmt, ...) {
  char body[1024];
  va_list ap;
  va_start(ap, fmt);
  vsnprintf(body, sizeof body, fmt, ap);
  va_end(ap);

  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[apv:%s] %s %s\n", module, level_tag(level), body);
}

}  // namespace apv::util
