#pragma once

#include <cstdarg>
#include <cstdio>

namespace apv::util {

/// Log severity, in increasing order of importance. The default threshold is
/// Warn so that the runtime is silent in tests and benchmarks unless asked.
enum class LogLevel : int { Trace = 0, Debug, Info, Warn, Error, Off };

/// Sets the global log threshold. Messages below the threshold are dropped.
void set_log_level(LogLevel level) noexcept;

/// Current global log threshold.
LogLevel log_level() noexcept;

/// printf-style logging entry point. Thread-safe (one line per call, never
/// interleaved). `module` is a short tag such as "ult" or "pieglobals".
void log_message(LogLevel level, const char* module, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace apv::util

#define APV_LOG(level, module, ...)                                      \
  do {                                                                   \
    if (static_cast<int>(level) >=                                       \
        static_cast<int>(::apv::util::log_level()))                      \
      ::apv::util::log_message(level, module, __VA_ARGS__);              \
  } while (0)

#define APV_TRACE(module, ...) APV_LOG(::apv::util::LogLevel::Trace, module, __VA_ARGS__)
#define APV_DEBUG(module, ...) APV_LOG(::apv::util::LogLevel::Debug, module, __VA_ARGS__)
#define APV_INFO(module, ...)  APV_LOG(::apv::util::LogLevel::Info,  module, __VA_ARGS__)
#define APV_WARN(module, ...)  APV_LOG(::apv::util::LogLevel::Warn,  module, __VA_ARGS__)
#define APV_ERROR(module, ...) APV_LOG(::apv::util::LogLevel::Error, module, __VA_ARGS__)
