#include "util/options.hpp"

#include <cstdlib>

#include "util/error.hpp"

namespace apv::util {

Options Options::parse(int argc, const char* const* argv) {
  Options opts;
  for (int i = 0; i < argc; ++i) {
    const std::string token = argv[i];
    const auto eq = token.find('=');
    require(eq != std::string::npos && eq > 0, ErrorCode::InvalidArgument,
            "option token must be key=value, got: " + token);
    opts.set(token.substr(0, eq), token.substr(eq + 1));
  }
  return opts;
}

void Options::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

void Options::set_int(const std::string& key, std::int64_t value) {
  values_[key] = std::to_string(value);
}

void Options::set_double(const std::string& key, double value) {
  values_[key] = std::to_string(value);
}

void Options::set_bool(const std::string& key, bool value) {
  values_[key] = value ? "true" : "false";
}

bool Options::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::string Options::get_string(const std::string& key,
                                const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& key,
                              std::int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 0);
}

double Options::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

}  // namespace apv::util
