#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace apv::util {

/// Flat key=value option bag used to configure runtime components
/// (privatization methods, the comm cost model, the cluster simulator).
/// Keys are dotted strings such as "pip.patched_glibc" or "net.latency_us".
class Options {
 public:
  Options() = default;

  /// Parses "key=value" tokens, e.g. from argv. Unknown keys are kept; each
  /// component validates only the keys it consumes. Throws InvalidArgument
  /// on tokens without '='.
  static Options parse(int argc, const char* const* argv);

  void set(const std::string& key, const std::string& value);
  void set_int(const std::string& key, std::int64_t value);
  void set_double(const std::string& key, double value);
  void set_bool(const std::string& key, bool value);

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::map<std::string, std::string>& all() const { return values_; }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace apv::util
