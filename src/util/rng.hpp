#pragma once

#include <cstdint>

namespace apv::util {

/// SplitMix64: tiny, fast, deterministic PRNG used for workload generation
/// and synthetic program images. Deterministic across platforms so that
/// benchmark workloads are reproducible bit-for-bit.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    return next() % bound;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_range(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

 private:
  std::uint64_t state_;
};

}  // namespace apv::util
