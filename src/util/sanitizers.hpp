#pragma once

#include <cstddef>

// Zero-overhead sanitizer hooks (DESIGN.md §14).
//
// Built with -DAPV_SANITIZE=address|thread (see the top-level CMakeLists),
// the compiler defines __SANITIZE_ADDRESS__/__SANITIZE_THREAD__ (GCC) or
// answers __has_feature (Clang), and the macros below expand to the real
// sanitizer interface calls:
//
//  - ASan: manual shadow poisoning for memory the runtime recycles *without
//    going through malloc/free* — pooled comm::Payload chunks and freed
//    isomalloc slot-heap blocks ("quarantine-on-release, unpoison-on-
//    acquire"), plus the fiber-switch annotations that teach ASan about ULT
//    stack switches so its stack bookkeeping follows the runtime's
//    hand-rolled context switch instead of misreading it as a wild jump.
//  - TSan: fiber create/switch/destroy annotations, so each ULT gets its
//    own vector clock and a rank resuming on a different PE thread after a
//    migration is not reported as a cross-thread race against itself.
//
// In a plain build every macro expands to nothing (statement macros to
// `((void)0)`), verified by bench/check_overhead staying within noise: no
// function calls, no branches, no fields are added anywhere.

#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define APV_ASAN 1
#endif
#if __has_feature(thread_sanitizer)
#define APV_TSAN 1
#endif
#endif
#if !defined(APV_ASAN) && defined(__SANITIZE_ADDRESS__)
#define APV_ASAN 1
#endif
#if !defined(APV_TSAN) && defined(__SANITIZE_THREAD__)
#define APV_TSAN 1
#endif
#ifndef APV_ASAN
#define APV_ASAN 0
#endif
#ifndef APV_TSAN
#define APV_TSAN 0
#endif

/// Either sanitizer that needs fiber awareness in the context-switch layer.
#define APV_SANITIZER_FIBERS (APV_ASAN || APV_TSAN)

#if APV_ASAN
#include <sanitizer/asan_interface.h>
#define APV_ASAN_POISON(addr, size) \
  __asan_poison_memory_region((addr), (size))
#define APV_ASAN_UNPOISON(addr, size) \
  __asan_unpoison_memory_region((addr), (size))
#else
#define APV_ASAN_POISON(addr, size) ((void)0)
#define APV_ASAN_UNPOISON(addr, size) ((void)0)
#endif

#if APV_TSAN
#include <sanitizer/tsan_interface.h>
#endif

// Annotation for functions that must not be ASan-instrumented: raw byte
// copies that intentionally read or write through poisoned shadow (packing
// a slot image that contains quarantined free blocks, unpacking over them).
#if APV_ASAN
#define APV_NO_SANITIZE_ADDRESS __attribute__((no_sanitize_address))
#else
#define APV_NO_SANITIZE_ADDRESS
#endif

namespace apv::util {

/// memcpy that bypasses ASan shadow checks on both source and destination.
/// Used only by the isomalloc pack/unpack paths, which move whole slot
/// prefixes that legitimately contain poisoned (freed) heap blocks; the
/// shadow state is reconciled by the caller afterwards (SlotHeap::
/// asan_reconcile). In non-ASan builds this is plain memcpy.
APV_NO_SANITIZE_ADDRESS inline void raw_memcpy(void* dst, const void* src,
                                               std::size_t n) noexcept {
#if APV_ASAN
  // Byte loop: the memcpy interceptor would check shadow; a plain loop in a
  // no_sanitize_address function does not. `volatile` stops GCC's loop-idiom
  // recognition from turning the loop right back into an intercepted memcpy
  // call. Pack/unpack are not hot paths (migration/checkpoint only) and
  // sanitizer builds are test builds.
  volatile auto* d = static_cast<unsigned char*>(dst);
  const auto* s = static_cast<const unsigned char*>(src);
  for (std::size_t i = 0; i < n; ++i) d[i] = s[i];
#else
  __builtin_memcpy(dst, src, n);
#endif
}

/// memset equivalent of raw_memcpy (poison-window fills during unpack).
APV_NO_SANITIZE_ADDRESS inline void raw_memset(void* dst, int value,
                                               std::size_t n) noexcept {
#if APV_ASAN
  volatile auto* d = static_cast<unsigned char*>(dst);
  for (std::size_t i = 0; i < n; ++i) d[i] = static_cast<unsigned char>(value);
#else
  __builtin_memset(dst, value, n);
#endif
}

}  // namespace apv::util
