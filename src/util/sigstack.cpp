#include "util/sigstack.hpp"

#include <signal.h>

#include <algorithm>
#include <cstdlib>

namespace apv::util {

namespace {

// One altstack per thread, owned for the thread's whole lifetime. Freed at
// thread exit; by then the thread can no longer fault on it (PE loops only
// run ULTs while alive, and the kernel never leaves a pending frame on an
// altstack across sigreturn).
struct ThreadAltStack {
  void* mem = nullptr;

  ~ThreadAltStack() {
    if (mem == nullptr) return;
    stack_t disable{};
    disable.ss_flags = SS_DISABLE;
    sigaltstack(&disable, nullptr);
    std::free(mem);
  }
};

thread_local ThreadAltStack g_altstack;

}  // namespace

void ensure_sigaltstack() {
  if (g_altstack.mem != nullptr) return;
  stack_t current{};
  if (sigaltstack(nullptr, &current) == 0 &&
      (current.ss_flags & SS_DISABLE) == 0 && current.ss_sp != nullptr) {
    return;  // someone already installed one for this thread
  }
  // SIGSTKSZ can be a dynamic (and small) value on modern glibc; the dirty
  // tracker's handler calls mprotect and touches tracker state, so give it
  // comfortable headroom.
  const std::size_t size =
      std::max<std::size_t>(static_cast<std::size_t>(SIGSTKSZ), 64 * 1024);
  void* mem = std::malloc(size);
  if (mem == nullptr) return;  // degraded: plain-stack delivery still works
  stack_t ss{};
  ss.ss_sp = mem;
  ss.ss_size = size;
  ss.ss_flags = 0;
  if (sigaltstack(&ss, nullptr) != 0) {
    std::free(mem);
    return;
  }
  g_altstack.mem = mem;
}

}  // namespace apv::util
