#pragma once

namespace apv::util {

/// Installs an alternate signal stack for the calling thread (idempotent).
///
/// Required wherever a thread may take a synchronous signal while executing
/// on memory that the signal itself made inaccessible: the Isomalloc dirty
/// tracker write barrier arms a rank's slot read-only, and the rank's ULT
/// *stack lives inside that slot* — the first push after re-arming faults,
/// and the kernel could not deliver SIGSEGV by pushing a frame onto the
/// very stack that is read-only. With SA_ONSTACK handlers the frame lands
/// here instead. Every PE loop thread calls this before running ULTs.
void ensure_sigaltstack();

}  // namespace apv::util
