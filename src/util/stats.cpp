#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace apv::util {

void Counters::add(const std::string& name, std::uint64_t delta) {
  values_[name] += delta;
}

void Counters::set(const std::string& name, std::uint64_t value) {
  values_[name] = value;
}

std::uint64_t Counters::get(const std::string& name) const {
  const auto it = values_.find(name);
  return it == values_.end() ? 0 : it->second;
}

void Counters::merge(const Counters& other) {
  for (const auto& [name, value] : other.values_) values_[name] += value;
}

std::string Counters::to_json() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : values_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + std::to_string(value);
  }
  out += "}";
  return out;
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(n_);
  const double n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double quantile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  if (q <= 0.0) return samples.front();
  if (q >= 1.0) return samples.back();
  const double pos = q * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples.size()) return samples.back();
  return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
}

double imbalance_ratio(const std::vector<double>& loads) {
  if (loads.empty()) return 1.0;
  double sum = 0.0;
  double mx = 0.0;
  for (double v : loads) {
    sum += v;
    mx = std::max(mx, v);
  }
  const double mean = sum / static_cast<double>(loads.size());
  if (mean <= 0.0) return 1.0;
  return mx / mean;
}

}  // namespace apv::util
