#pragma once

#include <cstddef>
#include <vector>

namespace apv::util {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
/// Used by benchmark harnesses and the load-balancing database.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  ///< sample variance (n-1 denominator)
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

  /// Merges another accumulator into this one (parallel reduction of stats).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Returns the q-quantile (0 <= q <= 1) of `samples` by linear interpolation.
/// The input vector is copied and sorted; intended for benchmark reporting,
/// not hot paths.
double quantile(std::vector<double> samples, double q);

/// Load-imbalance ratio max/mean of a load vector; 1.0 means perfectly
/// balanced. Returns 1.0 for empty or all-zero input.
double imbalance_ratio(const std::vector<double>& loads);

}  // namespace apv::util
