#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace apv::util {

/// Ordered set of named monotonic counters — the surfacing format for
/// subsystem instrumentation (comm transport, payload pool). Cheap to
/// snapshot, mergeable across PEs, and serializable for benchmark output.
class Counters {
 public:
  void add(const std::string& name, std::uint64_t delta);
  void set(const std::string& name, std::uint64_t value);
  std::uint64_t get(const std::string& name) const;  ///< 0 if absent

  /// Sums `other` into this (per-PE -> total reductions).
  void merge(const Counters& other);

  /// {"name":123,...} with keys in sorted order.
  std::string to_json() const;

  const std::map<std::string, std::uint64_t>& all() const { return values_; }

 private:
  std::map<std::string, std::uint64_t> values_;
};

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
/// Used by benchmark harnesses and the load-balancing database.
class RunningStats {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept;  ///< sample variance (n-1 denominator)
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

  /// Merges another accumulator into this one (parallel reduction of stats).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Returns the q-quantile (0 <= q <= 1) of `samples` by linear interpolation.
/// The input vector is copied and sorted; intended for benchmark reporting,
/// not hot paths.
double quantile(std::vector<double> samples, double q);

/// Load-imbalance ratio max/mean of a load vector; 1.0 means perfectly
/// balanced. Returns 1.0 for empty or all-zero input.
double imbalance_ratio(const std::vector<double>& loads);

}  // namespace apv::util
