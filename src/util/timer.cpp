#include "util/timer.hpp"

namespace apv::util {

namespace {
using Clock = std::chrono::steady_clock;
const Clock::time_point g_epoch = Clock::now();
}  // namespace

std::uint64_t wall_time_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           g_epoch)
          .count());
}

double wall_time() noexcept {
  return static_cast<double>(wall_time_ns()) * 1e-9;
}

double wall_tick() noexcept {
  return static_cast<double>(Clock::period::num) /
         static_cast<double>(Clock::period::den);
}

}  // namespace apv::util
