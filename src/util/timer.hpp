#pragma once

#include <chrono>
#include <cstdint>

namespace apv::util {

/// Monotonic wall-clock time in seconds since an arbitrary epoch.
/// This is the clock behind MPI_Wtime in the apv::mpi layer.
double wall_time() noexcept;

/// Resolution hint for wall_time(), in seconds (MPI_Wtick analogue).
double wall_tick() noexcept;

/// Monotonic time in nanoseconds, for microbenchmarks.
std::uint64_t wall_time_ns() noexcept;

/// Simple scoped stopwatch over the monotonic clock.
class WallTimer {
 public:
  WallTimer() noexcept : start_(wall_time_ns()) {}

  /// Seconds elapsed since construction or the last reset().
  double elapsed_s() const noexcept {
    return static_cast<double>(wall_time_ns() - start_) * 1e-9;
  }

  /// Nanoseconds elapsed since construction or the last reset().
  std::uint64_t elapsed_ns() const noexcept { return wall_time_ns() - start_; }

  void reset() noexcept { start_ = wall_time_ns(); }

 private:
  std::uint64_t start_;
};

}  // namespace apv::util
