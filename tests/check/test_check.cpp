// Runtime correctness-checking subsystem: deliberate collective mismatches,
// p2p type/size violations, and deadlocks must each produce a *located*
// diagnosis in warn mode and a clean fast abort in abort mode — across both
// collective algorithms and both p2p delivery paths — while clean runs
// (including legitimately-divergent gatherv counts and comm_split colors,
// and a mid-job PE failure recovery) stay free of false positives.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "check/checker.hpp"
#include "check/wait_graph.hpp"
#include "image/image.hpp"
#include "mpi/runtime.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

using namespace apv;
using mpi::Datatype;
using mpi::Env;
using mpi::Op;
using mpi::OpKind;

namespace {

using EntryFn = void* (*)(void*);

struct CheckJob {
  int vps = 2;
  int pes = 1;
  const char* mode = "warn";   // check.mode
  const char* algo = "naive";  // coll.algo
  bool inline_on = true;       // comm.inline
  double deadlock_s = 0.0;     // check.deadlock_s
  int timeout_s = 0;           // mpi.timeout_s override (0 = default)
};

struct CheckResult {
  bool threw = false;
  std::string what;
  std::vector<check::Diagnosis> diags;
  util::Counters counters;
  std::vector<std::intptr_t> rets;
};

CheckResult run_check_job(EntryFn entry, const CheckJob& j) {
  img::ImageBuilder b("checkjob");
  b.add_global<int>("unused", 0);
  b.add_function("mpi_main", entry);
  const img::ProgramImage image = b.build();
  mpi::RuntimeConfig cfg;
  cfg.nodes = 1;
  cfg.pes_per_node = j.pes;
  cfg.vps = j.vps;
  cfg.method = core::Method::PIEglobals;
  cfg.slot_bytes = std::size_t{8} << 20;
  cfg.options.set("fs.latency_us", "0");
  cfg.options.set("check.mode", j.mode);
  cfg.options.set("coll.algo", j.algo);
  if (!j.inline_on) cfg.options.set("comm.inline", "off");
  if (j.deadlock_s > 0.0) cfg.options.set_double("check.deadlock_s", j.deadlock_s);
  if (j.timeout_s > 0) cfg.options.set_int("mpi.timeout_s", j.timeout_s);
  mpi::Runtime rt(image, cfg);
  CheckResult res;
  try {
    rt.run();
  } catch (const util::ApvError& e) {
    res.threw = true;
    res.what = e.what();
  }
  if (rt.checker() != nullptr) {
    res.diags = rt.checker()->diagnoses();
    res.counters = rt.checker()->counters();
  }
  for (int r = 0; r < j.vps; ++r)
    res.rets.push_back(reinterpret_cast<std::intptr_t>(rt.rank_return(r)));
  return res;
}

bool any_diag_contains(const CheckResult& res, const std::string& needle) {
  for (const auto& d : res.diags)
    if (d.message.find(needle) != std::string::npos) return true;
  return false;
}

#define ENV() auto* env = static_cast<Env*>(arg)

// --- deliberate-mismatch programs -------------------------------------------

// Every rank claims itself as the bcast root: roots diverge, sizes agree.
void* wrong_root_bcast_main(void* arg) {
  ENV();
  int v = env->rank() * 10;
  env->bcast(&v, 1, Datatype::Int, /*root=*/env->rank());
  return reinterpret_cast<void*>(1);
}

// Rank 0 enters allreduce while everyone else enters reduce: the collective
// colors diverge at the same (comm, seq) site.
void* mixed_allreduce_reduce_main(void* arg) {
  ENV();
  int v = env->rank(), out = -1;
  if (env->rank() == 0) {
    env->allreduce(&v, &out, 1, Datatype::Int, Op::builtin(OpKind::Sum));
  } else {
    env->reduce(&v, &out, 1, Datatype::Int, Op::builtin(OpKind::Sum), 0);
  }
  return reinterpret_cast<void*>(1);
}

// Same collective, same shape, different reduction operator. The transport
// pattern is identical on every rank, so warn mode completes (with a wrong
// answer, as real MPI would) and the diagnosis is the only evidence.
void* op_mismatch_main(void* arg) {
  ENV();
  int v = env->rank() + 1, out = 0;
  const Op op = env->rank() == 0 ? Op::builtin(OpKind::Sum)
                                 : Op::builtin(OpKind::Max);
  env->allreduce(&v, &out, 1, Datatype::Int, op);
  return reinterpret_cast<void*>(1);
}

// Rank 0 sends 8 ints; rank 1 posts a 4-int receive. In warn mode the
// truncated prefix must still arrive intact.
void* short_recv_main(void* arg) {
  ENV();
  std::intptr_t ok = 1;
  if (env->rank() == 0) {
    int data[8] = {0, 1, 2, 3, 4, 5, 6, 7};
    env->send(data, 8, Datatype::Int, 1, /*tag=*/3);
  } else {
    int buf[4] = {-1, -1, -1, -1};
    const mpi::Status st = env->recv(buf, 4, Datatype::Int, 0, /*tag=*/3);
    if (st.count_bytes != 4 * static_cast<int>(sizeof(int))) ok = 0;
    for (int i = 0; i < 4; ++i)
      if (buf[i] != i) ok = 0;
  }
  return reinterpret_cast<void*>(ok);
}

// Rank 0 sends 4 ints; rank 1 receives 2 doubles. Byte counts agree (16),
// so only the element-size check can catch the type confusion.
void* type_mismatch_main(void* arg) {
  ENV();
  if (env->rank() == 0) {
    int data[4] = {1, 2, 3, 4};
    env->send(data, 4, Datatype::Int, 1, /*tag=*/5);
  } else {
    double buf[2] = {0, 0};
    env->recv(buf, 2, Datatype::Double, 0, /*tag=*/5);
  }
  return reinterpret_cast<void*>(1);
}

// Rank 0 contributes 2 ints to a uniform gather while everyone else sends 1:
// the per-rank block sizes disagree at the same (comm, seq) site, which only
// the gate's bytes comparison can catch (op/root/color all agree).
void* mismatched_gather_counts_main(void* arg) {
  ENV();
  const int n = env->size();
  const int mine = env->rank() == 0 ? 2 : 1;
  int v[2] = {env->rank(), env->rank()};
  std::vector<int> out(static_cast<std::size_t>(2 * n), -1);
  env->gather(v, mine, Datatype::Int, out.data(), mine, Datatype::Int,
              /*root=*/0);
  return reinterpret_cast<void*>(1);
}

// The last rank skips the barrier and finishes; everyone else is stuck in
// it forever — only the deadlock scan can name the site.
void* skip_barrier_main(void* arg) {
  ENV();
  if (env->rank() != env->size() - 1) env->barrier();
  return reinterpret_cast<void*>(1);
}

// Classic receive cycle: each of two ranks blocks receiving from the other
// before either sends.
void* recv_cycle_main(void* arg) {
  ENV();
  int v = -1;
  env->recv(&v, 1, Datatype::Int, 1 - env->rank(), /*tag=*/9);
  return reinterpret_cast<void*>(1);
}

// --- clean program: every check engaged, zero violations --------------------

void* clean_mixed_main(void* arg) {
  ENV();
  const int me = env->rank();
  const int n = env->size();
  std::intptr_t ok = 1;

  env->barrier();
  long l = 1L << me, all = 0;
  env->allreduce(&l, &all, 1, Datatype::Long, Op::builtin(OpKind::BitOr));
  if (all != (1L << n) - 1) ok = 0;
  int v = me == 2 ? 77 : 0;
  env->bcast(&v, 1, Datatype::Int, /*root=*/2 % n);
  if (v != (n > 2 ? 77 : 0)) ok = 0;

  // Ring exchange with matching declared types on both ends.
  int x = me, y = -1;
  env->sendrecv(&x, 1, Datatype::Int, (me + 1) % n, 11, &y, 1, Datatype::Int,
                (me + n - 1) % n, 11);
  if (y != (me + n - 1) % n) ok = 0;

  // Legitimately rank-divergent operands the checker must NOT flag:
  // gatherv with per-rank counts, comm_split with per-rank colors.
  std::vector<int> mine(static_cast<std::size_t>(me + 1), me);
  std::vector<int> counts(static_cast<std::size_t>(n));
  std::vector<int> displs(static_cast<std::size_t>(n));
  int total = 0;
  for (int i = 0; i < n; ++i) {
    counts[static_cast<std::size_t>(i)] = i + 1;
    displs[static_cast<std::size_t>(i)] = total;
    total += i + 1;
  }
  std::vector<int> gathered(static_cast<std::size_t>(total), -1);
  env->gatherv(mine.data(), me + 1, Datatype::Int, gathered.data(),
               counts.data(), displs.data(), Datatype::Int, /*root=*/0);
  if (me == 0) {
    for (int i = 0; i < n; ++i)
      for (int k = 0; k < i + 1; ++k)
        if (gathered[static_cast<std::size_t>(displs[static_cast<std::size_t>(
                i)] + k)] != i)
          ok = 0;
  }
  const mpi::CommId sub = env->comm_split(mpi::kCommWorld, me % 2, me);
  int sv = 1, ssum = 0;
  env->allreduce(&sv, &ssum, 1, Datatype::Int, Op::builtin(OpKind::Sum), sub);
  if (ssum != env->size(sub)) ok = 0;
  env->comm_free(sub);

  env->barrier();
  return reinterpret_cast<void*>(ok);
}

}  // namespace

// --- scenario 1: wrong-root bcast -------------------------------------------

TEST(CheckCollective, WrongRootBcastWarnNaive) {
  CheckJob j;
  j.mode = "warn";
  j.algo = "naive";
  j.timeout_s = 4;  // divergent roots may wedge the job; warn must not abort
  const auto res = run_check_job(&wrong_root_bcast_main, j);
  EXPECT_FALSE(res.diags.empty());
  EXPECT_TRUE(any_diag_contains(res, "root"));
  EXPECT_TRUE(any_diag_contains(res, "bcast"));
  EXPECT_GT(res.counters.get("check_coll_mismatches"), 0u);
}

TEST(CheckCollective, WrongRootBcastAbortNaive) {
  CheckJob j;
  j.mode = "abort";
  j.algo = "naive";
  const auto res = run_check_job(&wrong_root_bcast_main, j);
  EXPECT_TRUE(res.threw);
  EXPECT_NE(res.what.find("root"), std::string::npos) << res.what;
  EXPECT_TRUE(any_diag_contains(res, "bcast"));
}

TEST(CheckCollective, WrongRootBcastAbortHier) {
  CheckJob j;
  j.mode = "abort";
  j.algo = "hier";
  j.vps = 4;
  j.pes = 2;
  const auto res = run_check_job(&wrong_root_bcast_main, j);
  EXPECT_TRUE(res.threw);
  EXPECT_FALSE(res.diags.empty());
  EXPECT_TRUE(any_diag_contains(res, "root") ||
              any_diag_contains(res, "rendezvous"));
}

TEST(CheckCollective, WrongRootBcastWarnHier) {
  CheckJob j;
  j.mode = "warn";
  j.algo = "hier";
  j.vps = 4;
  j.pes = 2;
  j.timeout_s = 4;
  const auto res = run_check_job(&wrong_root_bcast_main, j);
  EXPECT_FALSE(res.diags.empty());
}

TEST(CheckCollective, MismatchedGatherCountsAbortNaive) {
  CheckJob j;
  j.mode = "abort";
  j.algo = "naive";
  const auto res = run_check_job(&mismatched_gather_counts_main, j);
  EXPECT_TRUE(res.threw);
  EXPECT_TRUE(any_diag_contains(res, "gather"));
  EXPECT_TRUE(any_diag_contains(res, "bytes"));
  EXPECT_GT(res.counters.get("check_coll_mismatches"), 0u);
}

TEST(CheckCollective, MismatchedGatherCountsAbortHier) {
  CheckJob j;
  j.mode = "abort";
  j.algo = "hier";
  j.vps = 4;
  j.pes = 2;
  const auto res = run_check_job(&mismatched_gather_counts_main, j);
  EXPECT_TRUE(res.threw);
  EXPECT_TRUE(any_diag_contains(res, "gather"));
  EXPECT_TRUE(any_diag_contains(res, "bytes"));
}

// --- scenario 2: mixed allreduce / reduce -----------------------------------

TEST(CheckCollective, MixedAllreduceReduceWarnNaive) {
  CheckJob j;
  j.mode = "warn";
  j.algo = "naive";
  j.timeout_s = 4;  // rank 0's trailing bcast phase has no peers: wedges
  const auto res = run_check_job(&mixed_allreduce_reduce_main, j);
  EXPECT_FALSE(res.diags.empty());
  EXPECT_TRUE(any_diag_contains(res, "allreduce"));
  EXPECT_TRUE(any_diag_contains(res, "reduce"));
}

TEST(CheckCollective, MixedAllreduceReduceAbortNaive) {
  CheckJob j;
  j.mode = "abort";
  j.algo = "naive";
  const auto res = run_check_job(&mixed_allreduce_reduce_main, j);
  EXPECT_TRUE(res.threw);
  EXPECT_NE(res.what.find("collective"), std::string::npos) << res.what;
}

TEST(CheckCollective, MixedAllreduceReduceAbortHier) {
  CheckJob j;
  j.mode = "abort";
  j.algo = "hier";
  j.vps = 4;
  j.pes = 2;
  const auto res = run_check_job(&mixed_allreduce_reduce_main, j);
  EXPECT_TRUE(res.threw);
  EXPECT_FALSE(res.diags.empty());
}

// Operator-only divergence completes in warn mode: the diagnosis is the
// only trace of the bug (as in a real silently-corrupting MPI run).
TEST(CheckCollective, OpMismatchWarnCompletesWithDiagnosis) {
  CheckJob j;
  j.mode = "warn";
  j.algo = "naive";
  const auto res = run_check_job(&op_mismatch_main, j);
  EXPECT_FALSE(res.threw) << res.what;
  EXPECT_TRUE(any_diag_contains(res, "op"));
  for (const auto r : res.rets) EXPECT_EQ(r, 1);
}

// --- scenario 3: short receive buffer / type confusion ----------------------

class CheckP2pPath : public ::testing::TestWithParam<bool> {};

TEST_P(CheckP2pPath, ShortRecvWarnDeliversTruncatedPrefix) {
  CheckJob j;
  j.mode = "warn";
  j.vps = 2;
  j.pes = GetParam() ? 1 : 2;  // same-PE inline vs routed mailbox
  j.inline_on = GetParam();
  const auto res = run_check_job(&short_recv_main, j);
  EXPECT_FALSE(res.threw) << res.what;
  EXPECT_TRUE(any_diag_contains(res, "truncation"));
  EXPECT_GT(res.counters.get("check_p2p_truncations"), 0u);
  EXPECT_EQ(res.rets[1], 1);  // the 4-int prefix arrived bit-exact
}

TEST_P(CheckP2pPath, ShortRecvAbortFailsWithLocatedDiagnosis) {
  CheckJob j;
  j.mode = "abort";
  j.vps = 2;
  j.pes = GetParam() ? 1 : 2;
  j.inline_on = GetParam();
  const auto res = run_check_job(&short_recv_main, j);
  EXPECT_TRUE(res.threw);
  EXPECT_NE(res.what.find("truncation"), std::string::npos) << res.what;
  EXPECT_NE(res.what.find("tag=3"), std::string::npos) << res.what;
}

TEST_P(CheckP2pPath, TypeMismatchWarnRecordsElementSizes) {
  CheckJob j;
  j.mode = "warn";
  j.vps = 2;
  j.pes = GetParam() ? 1 : 2;
  j.inline_on = GetParam();
  const auto res = run_check_job(&type_mismatch_main, j);
  EXPECT_FALSE(res.threw) << res.what;
  EXPECT_TRUE(any_diag_contains(res, "element size"));
  EXPECT_GT(res.counters.get("check_p2p_type_mismatches"), 0u);
}

TEST_P(CheckP2pPath, TypeMismatchAbortFails) {
  CheckJob j;
  j.mode = "abort";
  j.vps = 2;
  j.pes = GetParam() ? 1 : 2;
  j.inline_on = GetParam();
  const auto res = run_check_job(&type_mismatch_main, j);
  EXPECT_TRUE(res.threw);
  EXPECT_NE(res.what.find("element size"), std::string::npos) << res.what;
}

INSTANTIATE_TEST_SUITE_P(InlineAndRouted, CheckP2pPath, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "inline" : "routed";
                         });

// --- scenario 4: one rank skips a barrier (deadlock detection) --------------

TEST(CheckDeadlock, SkipBarrierAbortNamesTheStuckCollective) {
  CheckJob j;
  j.mode = "abort";
  j.algo = "naive";
  j.vps = 3;
  j.deadlock_s = 0.3;
  j.timeout_s = 30;  // the scan must fire long before the job timeout
  const auto res = run_check_job(&skip_barrier_main, j);
  EXPECT_TRUE(res.threw);
  EXPECT_NE(res.what.find("barrier"), std::string::npos) << res.what;
  EXPECT_NE(res.what.find("deadlock"), std::string::npos) << res.what;
  EXPECT_GT(res.counters.get("check_deadlock_scans"), 0u);
}

TEST(CheckDeadlock, SkipBarrierWarnRecordsAndTimesOut) {
  CheckJob j;
  j.mode = "warn";
  j.algo = "naive";
  j.vps = 3;
  j.deadlock_s = 0.3;
  j.timeout_s = 3;  // warn keeps waiting; the coarse timeout ends the job
  const auto res = run_check_job(&skip_barrier_main, j);
  EXPECT_TRUE(res.threw);
  EXPECT_TRUE(any_diag_contains(res, "barrier"));
}

TEST(CheckDeadlock, RecvCycleAbortNamesBothRanks) {
  CheckJob j;
  j.mode = "abort";
  j.vps = 2;
  j.deadlock_s = 0.3;
  j.timeout_s = 30;
  const auto res = run_check_job(&recv_cycle_main, j);
  EXPECT_TRUE(res.threw);
  EXPECT_NE(res.what.find("cycle"), std::string::npos) << res.what;
  EXPECT_NE(res.what.find("rank 0"), std::string::npos) << res.what;
  EXPECT_NE(res.what.find("rank 1"), std::string::npos) << res.what;
}

// --- clean runs: no false positives, every check engaged --------------------

class CheckCleanRun : public ::testing::TestWithParam<const char*> {};

TEST_P(CheckCleanRun, AbortModeStaysSilentOnCorrectPrograms) {
  img::ImageBuilder b("checkclean");
  b.add_global<int>("unused", 0);
  b.add_function("mpi_main", &clean_mixed_main);
  const img::ProgramImage image = b.build();
  mpi::RuntimeConfig cfg;
  cfg.nodes = 1;
  cfg.pes_per_node = 2;
  cfg.vps = 4;
  cfg.method = core::Method::PIEglobals;
  cfg.slot_bytes = std::size_t{8} << 20;
  cfg.options.set("fs.latency_us", "0");
  cfg.options.set("check.mode", "abort");
  cfg.options.set("coll.algo", GetParam());
  cfg.options.set_bool("util.dump_counters", true);  // finalize-dump smoke
  mpi::Runtime rt(image, cfg);
  rt.run();
  for (int r = 0; r < 4; ++r)
    EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(r)), 1);
  ASSERT_NE(rt.checker(), nullptr);
  EXPECT_EQ(rt.checker()->diagnosis_count(), 0u);
  const util::Counters c = rt.check_counters();
  EXPECT_GT(c.get("check_coll_verified"), 0u);
  EXPECT_GT(c.get("check_p2p_verified"), 0u);
  EXPECT_EQ(c.get("check_coll_mismatches"), 0u);
  EXPECT_EQ(c.get("check_p2p_truncations"), 0u);
  if (std::string(GetParam()) == "hier") {
    EXPECT_GT(c.get("check_block_compares"), 0u);
    EXPECT_EQ(c.get("check_block_mismatches"), 0u);
  }
  // The unified counter surface folds every subsystem into one map.
  const util::Counters all = rt.all_counters();
  EXPECT_GT(all.get("context_switches"), 0u);
  EXPECT_GT(all.get("check_coll_verified"), 0u);
}

INSTANTIATE_TEST_SUITE_P(BothAlgos, CheckCleanRun,
                         ::testing::Values("hier", "naive"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

// Checker-off runs must not pay for any of it: no checker object, and the
// historic truncation behaviour (hard InvalidArgument error) is preserved.
TEST(CheckOff, NoCheckerAndSeedTruncationSemantics) {
  CheckJob j;
  j.mode = "off";
  const auto res = run_check_job(&short_recv_main, j);
  EXPECT_TRUE(res.threw);  // seed behaviour: truncation is an error
  EXPECT_TRUE(res.diags.empty());
  EXPECT_EQ(res.counters.get("check_p2p_verified"), 0u);
}

// --- negative-path FT regression: recovery under an armed checker -----------

namespace {

void* ft_check_main(void* arg) {
  ENV();
  const int me = env->rank();
  const int n = env->size();
  std::intptr_t ok = 1;
  for (int it = 0; it < 3; ++it) {
    int v = me + it, sum = 0;
    env->allreduce(&v, &sum, 1, Datatype::Int, Op::builtin(OpKind::Sum));
    if (sum != n * (n - 1) / 2 + n * it) ok = 0;
    env->checkpoint_all();  // epoch it+1; PE 1 dies at epoch 2
    int x = me, y = -1;
    env->sendrecv(&x, 1, Datatype::Int, (me + 1) % n, 21, &y, 1, Datatype::Int,
                  (me + n - 1) % n, 21);
    if (y != (me + n - 1) % n) ok = 0;
  }
  env->barrier();
  return reinterpret_cast<void*>(ok);
}

}  // namespace

TEST(CheckFaultTolerance, RecoveryUnderAbortCheckerHasNoFalsePositives) {
  img::ImageBuilder b("checkft");
  b.add_global<int>("unused", 0);
  b.add_function("mpi_main", &ft_check_main);
  const img::ProgramImage image = b.build();
  mpi::RuntimeConfig cfg;
  cfg.nodes = 4;  // one PE per node: buddy copies live off-node
  cfg.pes_per_node = 1;
  cfg.vps = 4;
  cfg.method = core::Method::PIEglobals;
  cfg.slot_bytes = std::size_t{16} << 20;
  cfg.options.set("fs.latency_us", "0");
  cfg.options.set("check.mode", "abort");
  cfg.options.set("ft.policy", "epoch");
  cfg.options.set("ft.pe", "1");
  cfg.options.set("ft.epoch", "2");
  mpi::Runtime rt(image, cfg);
  rt.run();  // an armed checker must survive the kill + adoption unharmed
  for (int r = 0; r < 4; ++r)
    EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(r)), 1);
  EXPECT_GT(rt.recovery_count(), 0u);
  ASSERT_NE(rt.checker(), nullptr);
  EXPECT_EQ(rt.checker()->diagnosis_count(), 0u);
  const util::Counters c = rt.check_counters();
  EXPECT_GT(c.get("check_recoveries_seen"), 0u);
  EXPECT_EQ(c.get("check_coll_mismatches"), 0u);
  EXPECT_GT(c.get("check_coll_verified"), 0u);
}

// --- wait-graph analysis (unit) ---------------------------------------------

TEST(WaitGraph, RunnableRankMeansNoDeadlock) {
  std::vector<check::RankWait> w(2);
  w[0].rank = 0;
  w[0].blocked = true;
  w[1].rank = 1;
  w[1].blocked = false;
  EXPECT_FALSE(check::analyze_wait_graph(w).deadlock);
}

TEST(WaitGraph, CollectiveDivergencePicksSmallestGroup) {
  std::vector<check::RankWait> w(3);
  for (int i = 0; i < 3; ++i) {
    w[static_cast<std::size_t>(i)].rank = i;
    w[static_cast<std::size_t>(i)].blocked = true;
    w[static_cast<std::size_t>(i)].in_collective = true;
    w[static_cast<std::size_t>(i)].coll_comm = 0;
  }
  w[0].coll_name = "bcast";
  w[0].coll_seq = 4;
  w[1].coll_name = "bcast";
  w[1].coll_seq = 4;
  w[2].coll_name = "barrier";
  w[2].coll_seq = 4;
  const auto rep = check::analyze_wait_graph(w);
  EXPECT_TRUE(rep.deadlock);
  EXPECT_EQ(rep.kind, "collective-divergence");
  EXPECT_EQ(rep.ranks, std::vector<int>{2});
}

TEST(WaitGraph, FindsRecvCycleThroughChain) {
  // 0 -> 1 -> 2 -> 1 : the cycle is {1, 2}, entered through a tail.
  std::vector<check::RankWait> w(3);
  for (int i = 0; i < 3; ++i) {
    w[static_cast<std::size_t>(i)].rank = i;
    w[static_cast<std::size_t>(i)].blocked = true;
  }
  w[0].recv_src = 1;
  w[1].recv_src = 2;
  w[2].recv_src = 1;
  const auto rep = check::analyze_wait_graph(w);
  EXPECT_TRUE(rep.deadlock);
  EXPECT_EQ(rep.kind, "p2p-cycle");
  EXPECT_EQ(rep.ranks.size(), 2u);
}

TEST(WaitGraph, AnySourceBreaksTheCycleIntoStarvation) {
  std::vector<check::RankWait> w(2);
  w[0].rank = 0;
  w[0].blocked = true;
  w[0].recv_src = 1;
  w[1].rank = 1;
  w[1].blocked = true;
  w[1].recv_src = -1;  // kAnySource: no definite edge
  const auto rep = check::analyze_wait_graph(w);
  EXPECT_TRUE(rep.deadlock);
  EXPECT_EQ(rep.kind, "starved");
}
