// Transport primitive tests: pooled payload buffers (refcount, adoption,
// views, recycling) and the MPSC ring mailbox (FIFO per producer across the
// ring/overflow boundary, concurrent stress).

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "comm/mailbox.hpp"
#include "comm/message.hpp"
#include "comm/payload.hpp"

using namespace apv;
using comm::Mailbox;
using comm::Message;
using comm::Payload;

// --- payload buffers --------------------------------------------------------

TEST(Payload, AcquireFillRead) {
  comm::pool::set_enabled(true);
  Payload p = Payload::acquire(100);
  ASSERT_EQ(p.size(), 100u);
  for (std::size_t i = 0; i < p.size(); ++i)
    p.data()[i] = static_cast<std::byte>(i);
  for (std::size_t i = 0; i < p.size(); ++i)
    EXPECT_EQ(p.data()[i], static_cast<std::byte>(i));
  EXPECT_TRUE(p.unique());
  p.clear();
  EXPECT_TRUE(p.empty());
}

TEST(Payload, PoolRecyclesChunks) {
  comm::pool::set_enabled(true);
  // Warm: the first acquires may miss; after releases the freelists serve.
  for (int i = 0; i < 8; ++i) Payload::acquire(200).clear();
  comm::pool::reset_stats();
  for (int i = 0; i < 32; ++i) Payload::acquire(200).clear();
  const comm::PoolStats s = comm::pool::stats();
  EXPECT_GT(s.hits, 0u);
  EXPECT_EQ(s.bytes_copied, 0u);
}

TEST(Payload, PoolDisabledAlwaysAllocates) {
  comm::pool::set_enabled(false);
  comm::pool::reset_stats();
  for (int i = 0; i < 8; ++i) Payload::acquire(200).clear();
  const comm::PoolStats s = comm::pool::stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 8u);
  comm::pool::set_enabled(true);
}

TEST(Payload, AdoptAndTakeVectorAreZeroCopy) {
  comm::pool::set_enabled(true);
  std::vector<std::byte> bytes(4096, std::byte{0x5a});
  const std::byte* raw = bytes.data();
  comm::pool::reset_stats();
  Payload p = Payload::adopt(std::move(bytes));
  EXPECT_EQ(p.data(), raw);  // wrapped, not copied
  EXPECT_EQ(p.size(), 4096u);
  std::vector<std::byte> out = p.take_vector();
  EXPECT_EQ(out.data(), raw);  // released, not copied
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(comm::pool::stats().bytes_copied, 0u);
}

TEST(Payload, SharedTakeVectorMustCopy) {
  comm::pool::set_enabled(true);
  Payload p = Payload::adopt(std::vector<std::byte>(64, std::byte{7}));
  Payload alias = p;  // second handle: the vector can no longer be released
  comm::pool::reset_stats();
  std::vector<std::byte> out = p.take_vector();
  EXPECT_EQ(out.size(), 64u);
  EXPECT_EQ(out[0], std::byte{7});
  EXPECT_EQ(comm::pool::stats().bytes_copied, 64u);
  EXPECT_EQ(alias.size(), 64u);  // the alias still reads the original bytes
  EXPECT_EQ(alias.data()[63], std::byte{7});
}

TEST(Payload, ViewSharesBackingAndRefcount) {
  Payload parent = Payload::acquire(256);
  for (std::size_t i = 0; i < 256; ++i)
    parent.data()[i] = static_cast<std::byte>(i);
  Payload v = Payload::view(parent, 100, 50);
  EXPECT_EQ(v.size(), 50u);
  EXPECT_EQ(v.data(), parent.data() + 100);
  EXPECT_FALSE(parent.unique());
  parent.clear();  // the view keeps the chunk alive
  for (std::size_t i = 0; i < 50; ++i)
    EXPECT_EQ(v.data()[i], static_cast<std::byte>(100 + i));
}

TEST(Payload, UnbundleYieldsZeroCopyViews) {
  // Hand-build a two-entry aggregate envelope and split it back apart.
  const char a[] = "hello";
  const char b[] = "aggregated world";
  const std::size_t ea = comm::agg_entry_bytes(sizeof a);
  const std::size_t eb = comm::agg_entry_bytes(sizeof b);
  Message env;
  env.kind = Message::Kind::Aggregate;
  env.src_pe = 3;
  env.dst_pe = 1;
  env.opcode = 2;
  env.payload = Payload::acquire(ea + eb);
  comm::AggSubHeader h{};
  h.src_rank = 7;
  h.dst_rank = 9;
  h.tag = 42;
  h.seq = 11;
  h.bytes = sizeof a;
  std::memcpy(env.payload.data(), &h, sizeof h);
  std::memcpy(env.payload.data() + sizeof h, a, sizeof a);
  h.tag = 43;
  h.seq = 12;
  h.bytes = sizeof b;
  std::memcpy(env.payload.data() + ea, &h, sizeof h);
  std::memcpy(env.payload.data() + ea + sizeof h, b, sizeof b);

  const std::byte* backing = env.payload.data();
  comm::pool::reset_stats();
  std::vector<Message> got;
  comm::unbundle(std::move(env), [&](Message&& m) {
    got.push_back(std::move(m));
  });
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].src_pe, 3);
  EXPECT_EQ(got[0].src_rank, 7);
  EXPECT_EQ(got[0].tag, 42);
  EXPECT_EQ(got[0].seq, 11u);
  EXPECT_EQ(std::memcmp(got[0].payload.data(), a, sizeof a), 0);
  EXPECT_EQ(got[1].tag, 43);
  EXPECT_EQ(std::memcmp(got[1].payload.data(), b, sizeof b), 0);
  // The sub-payloads alias the envelope's buffer: no bytes moved.
  EXPECT_EQ(got[0].payload.data(), backing + sizeof(comm::AggSubHeader));
  EXPECT_EQ(comm::pool::stats().bytes_copied, 0u);
}

// --- mailbox ----------------------------------------------------------------

namespace {

Message make_msg(int src_pe, std::uint64_t seq, std::size_t payload_bytes) {
  Message m;
  m.kind = Message::Kind::UserData;
  m.src_pe = src_pe;
  m.dst_pe = 0;
  m.seq = seq;
  if (payload_bytes > 0) {
    m.payload = Payload::acquire(payload_bytes);
    m.payload.data()[0] = static_cast<std::byte>(seq);
    m.payload.data()[payload_bytes - 1] = static_cast<std::byte>(seq >> 8);
  }
  return m;
}

}  // namespace

TEST(Mailbox, SingleProducerFifo) {
  Mailbox mb;
  for (int i = 0; i < 100; ++i) mb.push(make_msg(0, i, 0));
  EXPECT_EQ(mb.size_approx(), 100u);
  std::vector<Message> out;
  std::uint64_t expect = 0;
  while (mb.pop_batch(out, 7) > 0) {
    for (const Message& m : out) EXPECT_EQ(m.seq, expect++);
    out.clear();
  }
  EXPECT_EQ(expect, 100u);
  EXPECT_TRUE(mb.empty());
  EXPECT_EQ(mb.ring_pushes(), 100u);
  EXPECT_EQ(mb.overflow_pushes(), 0u);
}

TEST(Mailbox, OverflowPreservesFifo) {
  Mailbox::Config cfg;
  cfg.slots = 16;  // tiny ring: most of the burst lands in the overflow
  Mailbox mb(cfg);
  for (int i = 0; i < 100; ++i) mb.push(make_msg(0, i, 0));
  EXPECT_GT(mb.overflow_pushes(), 0u);
  EXPECT_EQ(mb.size_approx(), 100u);
  std::vector<Message> out;
  std::uint64_t expect = 0;
  while (mb.pop_batch(out, 8) > 0) {
    for (const Message& m : out) EXPECT_EQ(m.seq, expect++);
    out.clear();
  }
  EXPECT_EQ(expect, 100u);
  // After the drain the overflow is empty and the ring takes traffic again.
  const std::uint64_t before = mb.ring_pushes();
  mb.push(make_msg(0, 0, 0));
  EXPECT_EQ(mb.ring_pushes(), before + 1);
}

namespace {

void run_mpsc_stress(Mailbox::Mode mode) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 4000;
  Mailbox::Config cfg;
  cfg.mode = mode;
  cfg.slots = 64;  // small on purpose: exercises the overflow transitions
  Mailbox mb(cfg);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&mb, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        // Mixed payload shapes: empty, small pooled, mid, large class.
        const std::size_t sizes[] = {0, 16, 700, 5000};
        mb.push(make_msg(p, static_cast<std::uint64_t>(i),
                         sizes[i % 4]));
      }
    });
  }

  std::map<int, std::uint64_t> next_seq;
  std::size_t total = 0;
  std::vector<Message> out;
  while (total < static_cast<std::size_t>(kProducers) * kPerProducer) {
    out.clear();
    if (mb.pop_batch(out, 64) == 0) {
      std::this_thread::yield();
      continue;
    }
    for (Message& m : out) {
      // FIFO per sender: each producer's sequence arrives in order.
      auto [it, inserted] = next_seq.try_emplace(m.src_pe, 0);
      ASSERT_EQ(m.seq, it->second)
          << "producer " << m.src_pe << " reordered";
      ++it->second;
      const std::size_t bytes = m.payload.size();
      if (bytes > 0) {
        EXPECT_EQ(m.payload.data()[0], static_cast<std::byte>(m.seq));
        EXPECT_EQ(m.payload.data()[bytes - 1],
                  static_cast<std::byte>(m.seq >> 8));
      }
      ++total;
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(mb.empty());
  for (const auto& [p, n] : next_seq)
    EXPECT_EQ(n, static_cast<std::uint64_t>(kPerProducer)) << "producer " << p;
}

}  // namespace

TEST(Mailbox, MpscStressRing) { run_mpsc_stress(Mailbox::Mode::Ring); }

TEST(Mailbox, MpscStressMutexBaseline) {
  run_mpsc_stress(Mailbox::Mode::Mutex);
}
