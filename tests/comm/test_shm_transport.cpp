// Cross-process shared-memory transport tests. The multi-process cases fork
// BEFORE any Cluster (and so any thread) exists in the test process; the
// child builds its own Cluster over the same shm job, runs its half of the
// protocol with plain checks, and reports through its exit code.
//
//  - ping-pong + a harness-level allreduce across 2 processes × 2 PEs each,
//    zero-copy verified by the shared arena counters (every payload that
//    crossed the boundary was wrapped, all blocks returned, no pool copies);
//  - whole-process kill: heartbeat/pid detection flips Cluster::pe_failed,
//    traffic to the dead ranks dead-letters, recovery re-homes the rank from
//    a buddy-checkpoint blob and flush_dead_letters delivers — all
//    counter-verified;
//  - transport.backend=inproc parity: every shm.* counter exists and is 0;
//  - a symmetric worker that also runs under apv_launch (see CMakeLists).

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "comm/cluster.hpp"
#include "comm/transport.hpp"

using namespace apv;
using comm::Message;

namespace {

template <typename Pred>
bool wait_for(Pred pred, int seconds = 20) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

std::string unique_job(const char* tag) {
  return std::string(tag) + "_" + std::to_string(static_cast<long>(getpid()));
}

comm::Cluster::Config shm_config(int proc, const std::string& job) {
  comm::Cluster::Config cc;
  cc.nodes = 2;
  cc.pes_per_node = 2;
  cc.options.set("transport.backend", "shm");
  cc.options.set_int("transport.procs", 2);
  cc.options.set_int("transport.proc", proc);
  cc.options.set("transport.job", job);
  cc.options.set_int("transport.hb_ms", 10);
  cc.options.set_int("transport.hb_timeout_ms", 300);
  cc.options.set_int("transport.liveness_ms", 2);
  cc.options.set_int("transport.arena_mb", 8);
  return cc;
}

constexpr int kPingRounds = 200;
constexpr std::int32_t kTagPing = 1;
constexpr std::int32_t kTagAllreduce = 2;
constexpr std::int32_t kTagBlob = 9;
constexpr std::int32_t kOpKickAllreduce = 40;
constexpr std::int32_t kOpDone = 99;
constexpr std::int32_t kOpDoneAck = 100;

// One process's half of the smoke protocol; symmetric apart from who serves
// proc 0. Returns true when everything checked out (the child _exits with
// the inverse). PEs 0,1 live in proc 0; PEs 2,3 in proc 1.
bool run_smoke_proc(int me, const std::string& job) {
  comm::Cluster cluster(shm_config(me, job));
  const int lo = me * 2, hi = lo + 1;

  std::atomic<int> pp_rounds{0};
  std::atomic<bool> pp_payload_ok{true};
  std::atomic<int> sum[2] = {{0}, {0}};        // per local PE allreduce sum
  std::atomic<int> contribs[2] = {{0}, {0}};
  std::atomic<bool> peer_done{false};
  std::atomic<bool> done_acked{false};

  for (int slot = 0; slot < 2; ++slot) {
    const comm::PeId pe = lo + slot;
    cluster.pe(pe).set_dispatcher([&, pe, slot](Message&& m) {
      if (m.kind == Message::Kind::Control) {
        if (m.opcode == kOpKickAllreduce) {
          // Contribute pe+1 to every other PE, from this PE's own thread.
          for (comm::PeId q = 0; q < 4; ++q) {
            if (q == pe) continue;
            Message c;
            c.kind = Message::Kind::UserData;
            c.dst_pe = q;
            c.tag = kTagAllreduce;
            c.payload = comm::Payload::acquire(sizeof(std::int32_t));
            const std::int32_t v = pe + 1;
            std::memcpy(c.payload.data(), &v, sizeof v);
            cluster.send(std::move(c));
          }
          sum[slot].fetch_add(pe + 1);  // own contribution
        } else if (m.opcode == kOpDone) {
          peer_done.store(true);
          Message ack;
          ack.kind = Message::Kind::Control;
          ack.dst_pe = m.src_pe;
          ack.opcode = kOpDoneAck;
          cluster.send(std::move(ack));
        } else if (m.opcode == kOpDoneAck) {
          done_acked.store(true);
        }
        return;
      }
      if (m.kind != Message::Kind::UserData) return;
      if (m.tag == kTagAllreduce) {
        std::int32_t v = 0;
        std::memcpy(&v, m.payload.data(), sizeof v);
        sum[slot].fetch_add(v);
        contribs[slot].fetch_add(1);
        return;
      }
      if (m.tag == kTagPing) {
        // Payload carries the round number in every byte.
        const auto round = static_cast<int>(m.seq);
        if (m.payload.size() != 64 ||
            m.payload.data()[13] != static_cast<std::byte>(round & 0xff)) {
          pp_payload_ok.store(false);
        }
        if (me == 0) {
          const int r = pp_rounds.fetch_add(1) + 1;
          if (r >= kPingRounds) return;  // done; main thread sends kOpDone
        }
        Message echo;
        echo.kind = Message::Kind::UserData;
        echo.dst_pe = me == 0 ? 2 : 0;
        echo.tag = kTagPing;
        echo.seq = m.seq + (me == 0 ? 1 : 0);
        const auto next = static_cast<int>(echo.seq);
        echo.payload = comm::Payload::acquire(64);
        std::memset(echo.payload.data(), next & 0xff, 64);
        cluster.send(std::move(echo));
      }
    });
  }
  cluster.start();

  // Kick the allreduce on both local PEs; proc 0 also serves the first ping.
  for (comm::PeId pe = lo; pe <= hi; ++pe) {
    Message k;
    k.kind = Message::Kind::Control;
    k.dst_pe = pe;
    k.opcode = kOpKickAllreduce;
    cluster.send(std::move(k));
  }
  if (me == 0) {
    Message ping;
    ping.kind = Message::Kind::UserData;
    ping.dst_pe = 2;
    ping.tag = kTagPing;
    ping.seq = 0;
    ping.payload = comm::Payload::acquire(64);
    std::memset(ping.payload.data(), 0, 64);
    cluster.send(std::move(ping));
  }

  bool ok = true;
  // Local completion: allreduce sums on both local PEs, ping-pong on proc 0.
  ok &= wait_for([&] {
    return contribs[0].load() == 3 && contribs[1].load() == 3 &&
           (me == 1 || pp_rounds.load() >= kPingRounds);
  });
  ok &= sum[0].load() == 10 && sum[1].load() == 10;
  ok &= pp_payload_ok.load();

  // Quiesce handshake before anyone stops: proc 0 announces done, proc 1
  // acks; both sides hold their cluster up until the peer agreed.
  if (me == 0) {
    Message done;
    done.kind = Message::Kind::Control;
    done.src_pe = 0;
    done.dst_pe = 2;
    done.opcode = kOpDone;
    cluster.send(std::move(done));
    ok &= wait_for([&] { return done_acked.load(); });
  } else {
    ok &= wait_for([&] { return peer_done.load(); });
    // Give our ack a moment to drain before teardown.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  if (me == 0) {
    const util::Counters c = cluster.stat_counters();
    ok &= c.get("shm.remote_sends") > 0;       // pair rings carried traffic
    ok &= c.get("shm.proxy_sends") > 0;        // the main-thread kicks
    ok &= c.get("shm.wrap_external") > 0;      // zero-copy receives happened
    ok &= c.get("shm.proc_deaths") == 0;
    ok &= c.get("shm.arena_allocs") > 0;
  }
  cluster.stop_and_join();
  return ok;
}

}  // namespace

// 2 processes × 2 PEs: windowless ping-pong between PE0 and PE2, an
// all-to-all harness allreduce over all four PEs, and a clean teardown
// handshake. The parent additionally checks the zero-copy counters: every
// arena block allocated was freed (no leak through wrap_external), and the
// payload pool saw no payload-to-payload copies.
TEST(ShmSmoke, PingPongAndAllreduceAcrossProcesses) {
  const std::string job = unique_job("smoke");
  comm::pool::reset_stats();
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    _exit(run_smoke_proc(1, job) ? 0 : 1);
  }
  const bool ok = run_smoke_proc(0, job);
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "child status " << status;
  EXPECT_TRUE(ok);
  // No payload ever travelled by copy on this side beyond user -> arena.
  EXPECT_EQ(comm::pool::stats().bytes_copied, 0u);
}

// Whole-process failure: the parent kills the child with SIGKILL, the
// heartbeat/pid sweep declares its PEs failed, user traffic to the lost
// rank dead-letters, and recovery (re-home + buddy-blob restore + flush)
// delivers everything to the rank's new home. Counter-verified end to end.
TEST(ShmFt, ProcessKillDeadLetterRerouteAndRecovery) {
  const std::string job = unique_job("ftkill");
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: host rank 1 on PE2, ship its "buddy checkpoint" blob to the
    // parent, then wait to be shot.
    comm::Cluster cluster(shm_config(1, job));
    for (comm::PeId pe = 2; pe <= 3; ++pe)
      cluster.pe(pe).set_dispatcher([](Message&&) {});
    cluster.resize_location_table(2);
    cluster.start();
    Message blob;
    blob.kind = Message::Kind::UserData;
    blob.src_pe = 2;
    blob.dst_pe = 0;
    blob.src_rank = 1;
    blob.tag = kTagBlob;
    blob.payload = comm::Payload::acquire(128);
    for (int i = 0; i < 128; ++i)
      blob.payload.data()[i] = static_cast<std::byte>(i ^ 0x5a);
    cluster.send(std::move(blob));
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(1));
  }

  comm::Cluster cluster(shm_config(0, job));
  std::atomic<bool> blob_ok{false};
  std::atomic<int> recovered_msgs{0};
  cluster.pe(0).set_dispatcher([&](Message&& m) {
    if (m.kind == Message::Kind::UserData && m.tag == kTagBlob) {
      bool ok = m.payload.size() == 128;
      for (int i = 0; ok && i < 128; ++i)
        ok = m.payload.data()[i] == static_cast<std::byte>(i ^ 0x5a);
      blob_ok.store(ok);
    }
  });
  cluster.pe(1).set_dispatcher([&](Message&& m) {
    if (m.kind == Message::Kind::UserData && m.tag == 7 && m.dst_rank == 1)
      recovered_msgs.fetch_add(1);
  });
  cluster.resize_location_table(2);
  cluster.set_location(0, 0);
  cluster.set_location(1, 2);  // rank 1 lives on the child's PE2
  cluster.start();

  // The buddy checkpoint arrived zero-copy through the arena.
  ASSERT_TRUE(wait_for([&] { return blob_ok.load(); }));

  kill(child, SIGKILL);
  // Heartbeat staleness / vanished pid flips both of the child's PEs.
  ASSERT_TRUE(
      wait_for([&] { return cluster.pe_failed(2) && cluster.pe_failed(3); }));
  int status = 0;
  EXPECT_EQ(waitpid(child, &status, 0), child);

  // Traffic to the dead rank parks in the dead-letter queue.
  constexpr int kPending = 10;
  for (int i = 0; i < kPending; ++i) {
    Message u;
    u.kind = Message::Kind::UserData;
    u.dst_pe = cluster.location(1);
    u.dst_rank = 1;
    u.tag = 7;
    u.seq = static_cast<std::uint64_t>(i);
    u.payload = comm::Payload::acquire(32);
    cluster.send(std::move(u));
  }
  EXPECT_EQ(cluster.dead_letter_count(), static_cast<std::size_t>(kPending));
  EXPECT_EQ(cluster.flush_dead_letters(), 0u);  // still homed on the dead PE

  // Recovery: re-home rank 1 onto the surviving PE1 (its state would be
  // reconstructed from the buddy blob we verified above) and flush.
  cluster.set_location(1, 1);
  EXPECT_EQ(cluster.flush_dead_letters(), static_cast<std::size_t>(kPending));
  ASSERT_TRUE(wait_for([&] { return recovered_msgs.load() == kPending; }));
  EXPECT_EQ(cluster.dead_letter_count(), 0u);

  const util::Counters c = cluster.stat_counters();
  EXPECT_GE(c.get("shm.proc_deaths"), 1u);
  EXPECT_GE(c.get("shm.failed_published"), 2u);  // both of the child's PEs
  EXPECT_EQ(cluster.num_live_pes(), 2);
  cluster.stop_and_join();
}

// transport.backend=inproc is the seed path: the full shm counter key set
// must be present and identically zero after real traffic.
TEST(ShmParity, InprocReportsZeroShmCounters) {
  comm::Cluster::Config cc;
  cc.nodes = 2;
  cc.pes_per_node = 1;
  cc.options.set("transport.backend", "inproc");
  comm::Cluster cluster(cc);
  std::atomic<int> received{0};
  cluster.pe(0).set_dispatcher([](Message&&) {});
  cluster.pe(1).set_dispatcher([&](Message&& m) {
    if (m.kind == Message::Kind::UserData) received.fetch_add(1);
  });
  cluster.start();
  for (int i = 0; i < 50; ++i) {
    Message u;
    u.kind = Message::Kind::UserData;
    u.src_pe = 0;
    u.dst_pe = 1;
    u.payload = comm::Payload::acquire(64);
    cluster.send(std::move(u));
  }
  ASSERT_TRUE(wait_for([&] { return received.load() == 50; }));
  const util::Counters c = cluster.stat_counters();
  for (int i = 0; i < comm::kNumShmCounterKeys; ++i) {
    EXPECT_EQ(c.get(comm::kShmCounterKeys[i]), 0u)
        << comm::kShmCounterKeys[i];
  }
  cluster.stop_and_join();
}

// transport.backend=shm with one process degenerates to the local path: no
// segment, every PE local, data-path shm counters all zero. This is what the
// whole-suite APV_TRANSPORT=shm CI variant exercises.
TEST(ShmParity, SingleProcessShmStaysLocal) {
  comm::Cluster::Config cc;
  cc.nodes = 2;
  cc.pes_per_node = 1;
  cc.options.set("transport.backend", "shm");
  comm::Cluster cluster(cc);
  EXPECT_STREQ(cluster.transport().name(), "shm");
  EXPECT_EQ(cluster.transport().num_procs(), 1);
  std::atomic<int> received{0};
  cluster.pe(0).set_dispatcher([](Message&&) {});
  cluster.pe(1).set_dispatcher([&](Message&& m) {
    if (m.kind == Message::Kind::UserData) received.fetch_add(1);
  });
  cluster.start();
  for (int i = 0; i < 50; ++i) {
    Message u;
    u.kind = Message::Kind::UserData;
    u.src_pe = 0;
    u.dst_pe = 1;
    u.payload = comm::Payload::acquire(64);
    cluster.send(std::move(u));
  }
  ASSERT_TRUE(wait_for([&] { return received.load() == 50; }));
  const util::Counters c = cluster.stat_counters();
  EXPECT_EQ(c.get("shm.remote_sends"), 0u);
  EXPECT_EQ(c.get("shm.polled_msgs"), 0u);
  EXPECT_EQ(c.get("shm.arena_allocs"), 0u);
  cluster.stop_and_join();
}

// Symmetric worker for the apv_launch-driven ctest entry (shm_launch_smoke
// runs `apv_launch -n 2 -- test_shm_transport --gtest_filter=ShmLaunch.*`).
// Standalone (no APV_SHM_* in the environment) it degenerates to the
// single-process shm path and still exercises the same protocol locally.
TEST(ShmLaunch, WorkerPingPong) {
  const char* env_procs = std::getenv("APV_SHM_PROCS");
  const int procs = env_procs != nullptr ? std::atoi(env_procs) : 1;
  const char* env_me = std::getenv("APV_SHM_PROC");
  const int me = env_me != nullptr ? std::atoi(env_me) : 0;

  comm::Cluster::Config cc;
  cc.nodes = 2;
  cc.pes_per_node = 1;
  cc.options.set("transport.backend", "shm");
  comm::Cluster cluster(cc);  // procs/proc/job come from the environment
  ASSERT_EQ(cluster.transport().num_procs(), procs);

  std::atomic<int> rounds{0};
  std::atomic<bool> peer_done{false};
  std::atomic<bool> done_acked{false};
  constexpr int kRounds = 100;
  for (comm::PeId pe = 0; pe < 2; ++pe) {
    if (!cluster.transport().is_local(pe)) continue;
    cluster.pe(pe).set_dispatcher([&, pe](Message&& m) {
      if (m.kind == Message::Kind::Control) {
        if (m.opcode == kOpDone) {
          peer_done.store(true);
          Message ack;
          ack.kind = Message::Kind::Control;
          ack.dst_pe = m.src_pe;
          ack.opcode = kOpDoneAck;
          cluster.send(std::move(ack));
        } else if (m.opcode == kOpDoneAck) {
          done_acked.store(true);
        }
        return;
      }
      if (m.kind != Message::Kind::UserData || m.tag != kTagPing) return;
      if (pe == 0) {
        const int r = rounds.fetch_add(1) + 1;
        if (r >= kRounds) return;
      }
      Message echo;
      echo.kind = Message::Kind::UserData;
      echo.dst_pe = pe == 0 ? 1 : 0;
      echo.tag = kTagPing;
      echo.seq = m.seq + (pe == 0 ? 1 : 0);
      echo.payload = comm::Payload::acquire(32);
      cluster.send(std::move(echo));
    });
  }
  cluster.start();

  if (me == 0) {
    Message ping;
    ping.kind = Message::Kind::UserData;
    ping.dst_pe = 1;
    ping.tag = kTagPing;
    ping.payload = comm::Payload::acquire(32);
    cluster.send(std::move(ping));
    ASSERT_TRUE(wait_for([&] { return rounds.load() >= kRounds; }));
    Message done;
    done.kind = Message::Kind::Control;
    done.src_pe = 0;
    done.dst_pe = 1;
    done.opcode = kOpDone;
    cluster.send(std::move(done));
    ASSERT_TRUE(wait_for([&] { return done_acked.load(); }));
  }
  if (procs == 1 || me == 1) {
    ASSERT_TRUE(wait_for([&] { return peer_done.load(); }));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (procs > 1 && me == 0) {
    EXPECT_GT(cluster.stat_counters().get("shm.remote_sends"), 0u);
  }
  cluster.stop_and_join();
}
