// Cluster transport tests: small-message aggregation (bundling, FIFO across
// flush boundaries, per-message counters), the legacy mutex-mailbox baseline,
// dead-letter flooding during recovery, and the zero-copy acceptance
// counters on the intra-PE and migration paths.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "comm/cluster.hpp"
#include "image/image.hpp"
#include "mpi/runtime.hpp"

using namespace apv;
using comm::Message;

namespace {

// Waits until `pred` holds or ~10 s pass.
template <typename Pred>
bool wait_for(Pred pred) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

}  // namespace

// Kicks PE0 with a control message; PE0's dispatcher then sends a stream of
// small messages (and a few large ones in between) to PE1. Verifies that the
// stream is bundled, that delivery order survives the flush boundaries, and
// that the counters account per-message.
TEST(Aggregation, BundlesSmallMessagesPreservingOrder) {
  constexpr int kMessages = 200;
  comm::Cluster::Config cc;
  cc.nodes = 1;
  cc.pes_per_node = 2;
  comm::Cluster cluster(cc);

  std::atomic<int> received{0};
  std::atomic<bool> in_order{true};
  cluster.pe(1).set_dispatcher([&](Message&& m) {
    if (m.kind != Message::Kind::UserData) return;
    const int expect = received.fetch_add(1);
    if (m.seq != static_cast<std::uint64_t>(expect)) in_order.store(false);
    // Payload integrity: first byte tags the sequence.
    if (!m.payload.empty() &&
        m.payload.data()[0] != static_cast<std::byte>(m.seq)) {
      in_order.store(false);
    }
  });
  cluster.pe(0).set_dispatcher([&](Message&& m) {
    if (m.kind != Message::Kind::Control) return;
    for (int i = 0; i < kMessages; ++i) {
      Message u;
      u.kind = Message::Kind::UserData;
      u.dst_pe = 1;
      u.dst_rank = 0;
      u.tag = 5;
      u.seq = static_cast<std::uint64_t>(i);
      // Every 16th message is larger than the default 512-byte threshold:
      // it must flush the bin first so order holds across the boundary.
      const std::size_t bytes = (i % 16 == 15) ? 2048 : 24;
      u.payload = comm::Payload::acquire(bytes);
      u.payload.data()[0] = static_cast<std::byte>(i);
      cluster.send(std::move(u));
    }
  });
  cluster.start();
  Message kick;
  kick.kind = Message::Kind::Control;
  kick.dst_pe = 0;
  cluster.send(std::move(kick));

  ASSERT_TRUE(wait_for([&] { return received.load() == kMessages; }));
  EXPECT_TRUE(in_order.load());
  const comm::CommCounters c = cluster.counters(0);
  EXPECT_EQ(c.sends, static_cast<std::uint64_t>(kMessages));
  EXPECT_GT(c.aggregated, 0u);
  EXPECT_GT(c.agg_envelopes, 0u);
  EXPECT_LT(c.agg_envelopes, c.aggregated);  // bundling actually bundled
  EXPECT_GT(c.flushes_order, 0u);            // the large messages forced it
  // Fewer envelopes crossed the mailbox than logical messages were sent.
  const util::Counters stats = cluster.stat_counters();
  EXPECT_LT(stats.get("comm.mailbox_ring_pushes") +
                stats.get("comm.mailbox_overflow_pushes"),
            static_cast<std::uint64_t>(kMessages));
  cluster.stop_and_join();
}

TEST(Aggregation, ThresholdZeroDisablesBundling) {
  comm::Cluster::Config cc;
  cc.nodes = 1;
  cc.pes_per_node = 2;
  cc.options.set("comm.agg_threshold", "0");
  comm::Cluster cluster(cc);
  std::atomic<int> received{0};
  cluster.pe(1).set_dispatcher([&](Message&& m) {
    if (m.kind == Message::Kind::UserData) received.fetch_add(1);
  });
  cluster.pe(0).set_dispatcher([&](Message&& m) {
    if (m.kind != Message::Kind::Control) return;
    for (int i = 0; i < 50; ++i) {
      Message u;
      u.kind = Message::Kind::UserData;
      u.dst_pe = 1;
      u.payload = comm::Payload::acquire(8);
      cluster.send(std::move(u));
    }
  });
  cluster.start();
  Message kick;
  kick.kind = Message::Kind::Control;
  kick.dst_pe = 0;
  cluster.send(std::move(kick));
  ASSERT_TRUE(wait_for([&] { return received.load() == 50; }));
  EXPECT_EQ(cluster.counters(0).aggregated, 0u);
  EXPECT_EQ(cluster.counters(0).agg_envelopes, 0u);
  cluster.stop_and_join();
}

TEST(Transport, LegacyMutexMailboxStillDelivers) {
  comm::Cluster::Config cc;
  cc.nodes = 1;
  cc.pes_per_node = 2;
  cc.options.set("comm.mailbox", "mutex");
  cc.options.set("comm.pool", "false");
  cc.options.set("comm.agg_threshold", "0");
  comm::Cluster cluster(cc);
  EXPECT_EQ(cluster.pe(0).mailbox().mode(), comm::Mailbox::Mode::Mutex);
  std::atomic<int> received{0};
  cluster.pe(1).set_dispatcher([&](Message&& m) {
    if (m.kind == Message::Kind::UserData) received.fetch_add(1);
  });
  cluster.pe(0).set_dispatcher([](Message&&) {});
  cluster.start();
  for (int i = 0; i < 100; ++i) {
    Message u;
    u.kind = Message::Kind::UserData;
    u.src_pe = 0;
    u.dst_pe = 1;
    u.payload = comm::Payload::acquire(64);
    cluster.send(std::move(u));
  }
  ASSERT_TRUE(wait_for([&] { return received.load() == 100; }));
  EXPECT_EQ(cluster.pe(1).mailbox().ring_pushes(), 0u);
  EXPECT_GT(cluster.pe(1).mailbox().overflow_pushes(), 0u);
  cluster.stop_and_join();
  comm::pool::set_enabled(true);  // process-wide: restore for other tests
}

// Satellite regression: flood the dead-letter queue from several threads
// while recovery re-homes the rank and flushes concurrently. Every message
// must be delivered exactly once — no loss, no duplication.
TEST(DeadLetter, FloodDuringRecoveryNoLossNoDuplication) {
  constexpr int kThreads = 3;
  constexpr int kPerThread = 400;
  comm::Cluster::Config cc;
  cc.nodes = 2;
  cc.pes_per_node = 1;
  comm::Cluster cluster(cc);
  std::mutex seen_mutex;
  std::set<std::uint64_t> seen;
  std::atomic<int> delivered{0};
  std::atomic<int> duplicates{0};
  for (int pe = 0; pe < 2; ++pe) {
    cluster.pe(pe).set_dispatcher([&](Message&& m) {
      if (m.kind != Message::Kind::UserData || m.tag != 7) return;
      std::lock_guard<std::mutex> lock(seen_mutex);
      if (!seen.insert(m.seq).second) duplicates.fetch_add(1);
      delivered.fetch_add(1);
    });
  }
  cluster.resize_location_table(2);
  cluster.set_location(0, 0);
  cluster.set_location(1, 1);
  cluster.start();
  cluster.fail_pe(1);

  // A flush while the rank still maps to the dead PE delivers nothing and
  // re-parks the whole queue.
  Message probe;
  probe.kind = Message::Kind::UserData;
  probe.src_pe = 0;
  probe.dst_pe = 1;
  probe.dst_rank = 1;
  probe.tag = 7;
  probe.seq = 999999;
  cluster.send(std::move(probe));
  EXPECT_EQ(cluster.flush_dead_letters(), 0u);
  EXPECT_EQ(cluster.dead_letter_count(), 1u);

  std::vector<std::thread> senders;
  for (int t = 0; t < kThreads; ++t) {
    senders.emplace_back([&cluster, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Message u;
        u.kind = Message::Kind::UserData;
        u.src_pe = 0;
        u.dst_pe = 1;
        u.dst_rank = 1;
        u.tag = 7;
        u.seq = static_cast<std::uint64_t>(t) * 100000 + i;
        u.payload = comm::Payload::acquire(16);
        cluster.send(std::move(u));
      }
    });
  }

  // Re-home mid-flood, then keep flushing until the queue drains: late
  // senders race the flush loop in both directions.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  cluster.set_location(1, 0);
  for (auto& t : senders) t.join();
  while (cluster.dead_letter_count() > 0) cluster.flush_dead_letters();

  const int expected = kThreads * kPerThread + 1;  // + the parked probe
  ASSERT_TRUE(wait_for([&] { return delivered.load() >= expected; }));
  EXPECT_EQ(delivered.load(), expected);
  EXPECT_EQ(duplicates.load(), 0);
  EXPECT_EQ(static_cast<int>(seen.size()), expected);
  EXPECT_EQ(cluster.dead_letter_count(), 0u);
  cluster.stop_and_join();
}

// --- zero-copy acceptance counters ------------------------------------------

namespace {

void* intra_pe_pingpong(void* arg) {
  auto* env = static_cast<mpi::Env*>(arg);
  char buf[256];
  // Blocking ping-pong: each round's buffers are released before the next
  // acquire, so the pool's recycling actually engages.
  if (env->rank() == 0) {
    std::memset(buf, 0x2a, sizeof buf);
    for (int i = 0; i < 100; ++i) {
      env->send(buf, sizeof buf, mpi::Datatype::Byte, 1, 1);
      env->recv(buf, sizeof buf, mpi::Datatype::Byte, 1, 2);
    }
    return nullptr;
  }
  std::intptr_t ok = 1;
  for (int i = 0; i < 100; ++i) {
    std::memset(buf, 0, sizeof buf);
    env->recv(buf, sizeof buf, mpi::Datatype::Byte, 0, 1);
    if (buf[0] != 0x2a || buf[255] != 0x2a) ok = 0;
    env->send(buf, sizeof buf, mpi::Datatype::Byte, 0, 2);
  }
  return reinterpret_cast<void*>(ok);
}

void* migrate_roundtrip(void* arg) {
  auto* env = static_cast<mpi::Env*>(arg);
  int* data = env->rank_alloc_array<int>(4096);
  for (int i = 0; i < 4096; ++i) data[i] = env->rank() * 100000 + i;
  env->migrate_to((env->my_pe() + 1) % env->num_pes());
  std::intptr_t ok = 1;
  for (int i = 0; i < 4096; ++i) {
    if (data[i] != env->rank() * 100000 + i) ok = 0;
  }
  env->rank_free(data);
  return reinterpret_cast<void*>(ok);
}

mpi::RuntimeConfig transport_cfg(int vps, int pes, core::Method method) {
  mpi::RuntimeConfig cfg;
  cfg.nodes = 1;
  cfg.pes_per_node = pes;
  cfg.vps = vps;
  cfg.method = method;
  cfg.slot_bytes = std::size_t{8} << 20;
  return cfg;
}

img::ProgramImage entry_image(const char* name, img::NativeFn fn) {
  img::ImageBuilder b(name);
  b.add_global<int>("unused", 0);
  b.add_function("mpi_main", fn);
  return b.build();
}

}  // namespace

// Acceptance: with the same-PE inline fast path disabled, intra-PE routed
// delivery hands the sender's pooled buffer to the receiver — the pool
// observes hits and zero payload-to-payload copies.
TEST(ZeroCopy, IntraPeDeliveryCopiesNoPayloadBytes) {
  const img::ProgramImage image =
      entry_image("zc_intra", &intra_pe_pingpong);
  mpi::RuntimeConfig cfg = transport_cfg(2, 1, core::Method::None);
  cfg.options.set("comm.inline", "off");
  mpi::Runtime rt(image, cfg);
  comm::pool::reset_stats();
  rt.run();
  EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(1)), 1);
  const comm::PoolStats s = comm::pool::stats();
  EXPECT_GT(s.hits, 0u);
  EXPECT_EQ(s.bytes_copied, 0u);
}

// Acceptance: with the inline fast path on (the default), the same exchange
// bypasses the payload pool entirely — user buffer to user buffer.
TEST(ZeroCopy, IntraPeInlineDeliverySkipsThePool) {
  const img::ProgramImage image =
      entry_image("zc_inline", &intra_pe_pingpong);
  mpi::Runtime rt(image, transport_cfg(2, 1, core::Method::None));
  comm::pool::reset_stats();
  rt.run();
  EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(1)), 1);
  const comm::PoolStats s = comm::pool::stats();
  EXPECT_EQ(s.bytes_copied, 0u);
  const util::Counters lc = rt.locality_counters();
  EXPECT_GT(lc.get("inline_hits") + lc.get("inline_misses"), 0u);
}

// Acceptance: migration ships the packed image by moving the buffer — pack
// adopts into the envelope, arrival releases it back out, zero copies.
TEST(ZeroCopy, MigrationMovesThePackedImage) {
  const img::ProgramImage image =
      entry_image("zc_migrate", &migrate_roundtrip);
  mpi::Runtime rt(image, transport_cfg(2, 2, core::Method::PIEglobals));
  comm::pool::reset_stats();
  rt.run();
  for (int r = 0; r < 2; ++r)
    EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(r)), 1);
  EXPECT_EQ(rt.migration_count(), 2u);
  EXPECT_EQ(comm::pool::stats().bytes_copied, 0u);
}
