// Unit tests for the core privatization layer: capability registry,
// variable-access binding per method, the Privatizer rank lifecycle, the
// method-specific refusals (SMP, linker, namespace caps), PIEglobals
// fix-up modes including the scan's false-positive hazard, function-pointer
// translation, and pieglobals_find.

#include <gtest/gtest.h>

#include <cstring>

#include "core/access.hpp"
#include "core/funcptr.hpp"
#include "core/methods.hpp"
#include "core/privatizer.hpp"
#include "image/loader.hpp"
#include "isomalloc/arena.hpp"
#include "util/error.hpp"

using namespace apv;
using util::ApvError;
using util::ErrorCode;

namespace {

void* noop_main(void* arg) { return arg; }
void noop_body(void*) {}

img::ProgramImage kinds_image() {
  img::ImageBuilder b("kinds_core");
  b.add_global<int>("mutable_global", 5);
  b.add_global<int>("static_var", 6, {.is_static = true});
  b.add_global<int>("tls_var", 7, {.is_tls = true});
  b.add_global<int>("const_var", 8, {.is_const = true});
  b.add_function("mpi_main", &noop_main);
  return b.build();
}

struct Fixture {
  explicit Fixture(core::Method method, util::Options extra = {},
                   int pes_in_process = 1)
      : arena({.slot_size = std::size_t{8} << 20, .max_slots = 24}),
        image(kinds_image()),
        loader(extra) {
    core::ProcessEnv env;
    env.process_id = 0;
    env.pes_in_process = pes_in_process;
    env.image = &image;
    env.loader = &loader;
    env.arena = &arena;
    env.options = extra;
    priv = std::make_unique<core::Privatizer>(method, std::move(env));
  }

  core::RankContext* make_rank(int r) {
    core::Privatizer::RankParams params;
    params.world_rank = r;
    params.body = &noop_body;
    return priv->create_rank(params);
  }

  iso::IsoArena arena;
  img::ProgramImage image;
  img::Loader loader;
  std::unique_ptr<core::Privatizer> priv;
};

}  // namespace

TEST(Capabilities, TableHasAllEightRows) {
  const auto rows = core::capability_table();
  ASSERT_EQ(rows.size(), 8u);
  EXPECT_EQ(rows[0].name, "Manual refactoring");
  EXPECT_EQ(rows.back().name, "PIEglobals");
  // The headline comparison: only PIEglobals among the new runtime methods
  // is automatic, SMP-capable, AND migratable.
  int good_auto_smp_migratable = 0;
  for (const auto& c : rows) {
    if (c.automation == "Good" && c.smp_support && c.migration_support &&
        c.runtime_method) {
      ++good_auto_smp_migratable;
      EXPECT_EQ(c.name, "PIEglobals");
    }
  }
  EXPECT_EQ(good_auto_smp_migratable, 1);
}

TEST(Capabilities, MethodNamesRoundTrip) {
  for (core::Method m :
       {core::Method::None, core::Method::TLSglobals, core::Method::Swapglobals,
        core::Method::PIPglobals, core::Method::FSglobals,
        core::Method::PIEglobals}) {
    EXPECT_EQ(core::method_from_string(core::method_name(m)), m);
  }
  EXPECT_THROW(core::method_from_string("magicglobals"), ApvError);
}

// --- binding matrix ---------------------------------------------------------

struct BindCase {
  core::Method method;
  const char* var;
  core::AccessPath expected;
};

class BindMatrix : public ::testing::TestWithParam<BindCase> {};

TEST_P(BindMatrix, PathMatchesMethodSemantics) {
  const BindCase& c = GetParam();
  util::Options opts;
  opts.set("swap.linker_version", "2.23");
  Fixture fx(c.method, opts);
  const core::VarAccess a = fx.priv->bind(c.var);
  EXPECT_EQ(a.path, c.expected)
      << core::method_name(c.method) << " / " << c.var << " got "
      << core::access_path_name(a.path);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, BindMatrix,
    ::testing::Values(
        // Baseline: everything shared (RankData resolves through the shared
        // primary base; SharedDirect pins immutable data).
        BindCase{core::Method::None, "mutable_global",
                 core::AccessPath::RankData},
        BindCase{core::Method::None, "const_var",
                 core::AccessPath::SharedDirect},
        // TLSglobals privatizes exactly the tagged variables.
        BindCase{core::Method::TLSglobals, "tls_var",
                 core::AccessPath::TlsBase},
        BindCase{core::Method::TLSglobals, "mutable_global",
                 core::AccessPath::RankData},
        // Swapglobals: GOT-visible globals via the active GOT; statics leak.
        BindCase{core::Method::Swapglobals, "mutable_global",
                 core::AccessPath::GotIndirect},
        BindCase{core::Method::Swapglobals, "static_var",
                 core::AccessPath::RankData},
        // PIE-family: everything through the rank's own segments.
        BindCase{core::Method::PIPglobals, "mutable_global",
                 core::AccessPath::RankData},
        BindCase{core::Method::PIPglobals, "static_var",
                 core::AccessPath::RankData},
        BindCase{core::Method::FSglobals, "mutable_global",
                 core::AccessPath::RankData},
        BindCase{core::Method::PIEglobals, "static_var",
                 core::AccessPath::RankData},
        BindCase{core::Method::PIEglobals, "tls_var",
                 core::AccessPath::TlsBase}),
    [](const ::testing::TestParamInfo<BindCase>& info) {
      return std::string(core::method_name(info.param.method)) + "_" +
             info.param.var;
    });

// --- refusals ---------------------------------------------------------------

TEST(Refusals, SwapglobalsRejectsSmpMode) {
  try {
    Fixture fx(core::Method::Swapglobals, {}, /*pes_in_process=*/4);
    FAIL() << "SMP mode not refused";
  } catch (const ApvError& e) {
    EXPECT_EQ(e.code(), ErrorCode::NotSupported);
  }
}

TEST(Refusals, SwapglobalsRejectsNewLinkerUnlessPatched) {
  util::Options newld;
  newld.set("swap.linker_version", "2.38");
  EXPECT_THROW(Fixture(core::Method::Swapglobals, newld), ApvError);
  newld.set_bool("swap.linker_patched", true);
  EXPECT_NO_THROW(Fixture(core::Method::Swapglobals, newld));
}

TEST(Refusals, TlsGlobalsRequiresCapableCompiler) {
  util::Options icc;
  icc.set("tls.compiler", "icc");
  EXPECT_THROW(Fixture(core::Method::TLSglobals, icc), ApvError);
}

TEST(Refusals, PieRequiresPieBuild) {
  img::ImageBuilder b("nonpie2");
  b.add_global<int>("x", 0);
  b.add_function("mpi_main", &noop_main);
  b.set_pie(false);
  const img::ProgramImage image = b.build();
  iso::IsoArena arena({.slot_size = std::size_t{8} << 20, .max_slots = 4});
  img::Loader loader;
  core::ProcessEnv env;
  env.image = &image;
  env.loader = &loader;
  env.arena = &arena;
  EXPECT_THROW(core::Privatizer(core::Method::PIEglobals, env), ApvError);
}

TEST(Refusals, PipNamespaceCapSurfacesAtRankCreation) {
  Fixture fx(core::Method::PIPglobals);
  std::vector<core::RankContext*> rcs;
  for (int r = 0; r < img::Loader::kGlibcNamespaceCap; ++r) {
    rcs.push_back(fx.make_rank(r));
  }
  try {
    fx.make_rank(99);
    FAIL() << "13th dlmopen namespace not refused";
  } catch (const ApvError& e) {
    EXPECT_EQ(e.code(), ErrorCode::LimitExceeded);
  }
  for (auto* rc : rcs) fx.priv->destroy_rank(rc);
}

TEST(Refusals, PipAndFsRefuseMigrationHooks) {
  for (core::Method m : {core::Method::PIPglobals, core::Method::FSglobals}) {
    Fixture fx(m);
    core::RankContext* rc = fx.make_rank(0);
    EXPECT_FALSE(fx.priv->supports_migration());
    EXPECT_THROW(fx.priv->rank_departed(rc), ApvError);
    fx.priv->destroy_rank(rc);
  }
}

// --- rank lifecycle ---------------------------------------------------------

class RankLifecycle : public ::testing::TestWithParam<core::Method> {};

TEST_P(RankLifecycle, CreateProvidesWorkingPrivateView) {
  Fixture fx(GetParam());
  core::RankContext* rc = fx.make_rank(0);
  EXPECT_NE(rc->instance, nullptr);
  EXPECT_NE(rc->data_base, nullptr);
  EXPECT_NE(rc->heap, nullptr);
  EXPECT_NE(rc->ult, nullptr);
  EXPECT_TRUE(rc->heap->check_integrity());
  // The ULT's stack lives inside the rank's slot.
  EXPECT_TRUE(fx.arena.contains(rc->slot, rc->ult->stack_base()));
  fx.priv->destroy_rank(rc);
  EXPECT_EQ(fx.arena.slots_in_use(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, RankLifecycle,
    ::testing::Values(core::Method::None, core::Method::TLSglobals,
                      core::Method::Swapglobals, core::Method::PIPglobals,
                      core::Method::FSglobals, core::Method::PIEglobals),
    [](const ::testing::TestParamInfo<core::Method>& info) {
      return core::method_name(info.param);
    });

TEST(PieRank, SegmentCopiesLiveInIsomallocAndAreFixedUp) {
  Fixture fx(core::Method::PIEglobals);
  core::RankContext* rc = fx.make_rank(0);
  const img::ImageInstance& prim = fx.priv->primary();
  // The rank's segments are inside its slot — the migratability property.
  EXPECT_TRUE(fx.arena.contains(rc->slot, rc->instance->code_base()));
  EXPECT_TRUE(fx.arena.contains(rc->slot, rc->instance->data_base()));
  EXPECT_NE(rc->instance->code_base(), prim.code_base());
  // The copied GOT points into the copy, not the primary.
  const img::VarDecl& v =
      fx.image.var(fx.image.var_id("mutable_global"));
  const auto got_target = rc->instance->got()[v.got_index];
  EXPECT_TRUE(fx.arena.contains(
      rc->slot, reinterpret_cast<const void*>(got_target)));
  fx.priv->destroy_rank(rc);
}

// --- function-pointer translation and pieglobals_find -----------------------

TEST(FuncPtr, HandleRoundTripsAcrossRanks) {
  Fixture fx(core::Method::PIEglobals);
  core::RankContext* r0 = fx.make_rank(0);
  core::RankContext* r1 = fx.make_rank(1);
  // An address taken from rank 0's copy...
  void* addr0 =
      r0->instance->func_addr(fx.image.func_id("mpi_main"));
  const core::FuncHandle h = core::to_handle(fx.loader.registry(), addr0);
  ASSERT_TRUE(h.valid());
  // ...localizes to a *different* address in rank 1's copy...
  void* addr1 = core::localize(h, *r1);
  EXPECT_NE(addr0, addr1);
  EXPECT_TRUE(fx.arena.contains(r1->slot, addr1));
  // ...and resolves to the same native body through either copy.
  EXPECT_EQ(core::native_of(h, *r0), &noop_main);
  EXPECT_EQ(core::native_of(h, *r1), &noop_main);
  fx.priv->destroy_rank(r0);
  fx.priv->destroy_rank(r1);
}

TEST(FuncPtr, ForeignAddressRejected) {
  Fixture fx(core::Method::PIEglobals);
  int local = 0;
  EXPECT_THROW(core::to_handle(fx.loader.registry(), &local), ApvError);
}

TEST(PieglobalsFind, TranslatesCodeAndDataBackToPrimary) {
  Fixture fx(core::Method::PIEglobals);
  core::RankContext* rc = fx.make_rank(0);
  const img::ImageInstance& prim = fx.priv->primary();

  const void* priv_code = rc->instance->code_base() + 0x40;
  EXPECT_EQ(core::pieglobals_find(fx.loader.registry(), priv_code),
            prim.code_base() + 0x40);
  const void* priv_data = rc->instance->data_base() + 8;
  EXPECT_EQ(core::pieglobals_find(fx.loader.registry(), priv_data),
            prim.data_base() + 8);
  int unrelated = 0;
  EXPECT_EQ(core::pieglobals_find(fx.loader.registry(), &unrelated), nullptr);
  fx.priv->destroy_rank(rc);
}

// --- fix-up modes ------------------------------------------------------------

namespace {
void bait_ctor(img::CtorContext& ctx) {
  auto* block = static_cast<void**>(ctx.ctor_malloc(4 * sizeof(void*)));
  ctx.set_ptr("block", block);
  ctx.write_heap_ptr(block, 0, ctx.func_ptr("mpi_main"));
  // An integer that happens to equal a code address: NOT a pointer.
  ctx.set<std::uintptr_t>(
      "bait",
      reinterpret_cast<std::uintptr_t>(ctx.instance().code_base()) + 0x80);
}

img::ProgramImage bait_image() {
  img::ImageBuilder b("bait");
  b.add_global<void*>("block", nullptr);
  b.add_global<std::uintptr_t>("bait", 0);
  b.add_function("mpi_main", &noop_main);
  b.add_constructor(&bait_ctor);
  return b.build();
}

std::uintptr_t bait_value_of(const img::ProgramImage& image,
                             const core::RankContext* rc) {
  std::uintptr_t v;
  std::memcpy(&v, rc->data_base + image.var(image.var_id("bait")).offset,
              sizeof v);
  return v;
}
}  // namespace

TEST(PieFixup, ScanRewritesTruePointersAndTheBait) {
  const img::ProgramImage image = bait_image();
  iso::IsoArena arena({.slot_size = std::size_t{8} << 20, .max_slots = 4});
  img::Loader loader;
  core::ProcessEnv env;
  env.image = &image;
  env.loader = &loader;
  env.arena = &arena;
  env.options.set("pie.fixup", "scan");
  core::Privatizer priv(core::Method::PIEglobals, std::move(env));
  core::Privatizer::RankParams params;
  params.body = &noop_body;
  core::RankContext* rc = priv.create_rank(params);

  // True pointer chain privatized: block -> rank copy, fn ptr -> rank code.
  void* block;
  std::memcpy(&block, rc->data_base + image.var(image.var_id("block")).offset,
              sizeof block);
  EXPECT_TRUE(arena.contains(rc->slot, block));
  void* fn = *static_cast<void**>(block);
  EXPECT_TRUE(rc->instance->contains_code(fn));
  // ...but the integer bait was also rewritten: the documented false
  // positive of the scan.
  EXPECT_TRUE(arena.contains(
      rc->slot, reinterpret_cast<void*>(bait_value_of(image, rc))));
  priv.destroy_rank(rc);
}

TEST(PieFixup, ExactModePreservesTheBait) {
  const img::ProgramImage image = bait_image();
  iso::IsoArena arena({.slot_size = std::size_t{8} << 20, .max_slots = 4});
  img::Loader loader;
  core::ProcessEnv env;
  env.image = &image;
  env.loader = &loader;
  env.arena = &arena;
  env.options.set("pie.fixup", "exact");
  core::Privatizer priv(core::Method::PIEglobals, std::move(env));
  const img::ImageInstance& prim = priv.primary();
  const std::uintptr_t original =
      reinterpret_cast<std::uintptr_t>(prim.code_base()) + 0x80;

  core::Privatizer::RankParams params;
  params.body = &noop_body;
  core::RankContext* rc = priv.create_rank(params);
  // True pointers still fixed...
  void* block;
  std::memcpy(&block, rc->data_base + image.var(image.var_id("block")).offset,
              sizeof block);
  EXPECT_TRUE(arena.contains(rc->slot, block));
  EXPECT_TRUE(rc->instance->contains_code(*static_cast<void**>(block)));
  // ...and the integer is untouched.
  EXPECT_EQ(bait_value_of(image, rc), original);
  priv.destroy_rank(rc);
}

TEST(PieShareCode, SharedCodeSkipsDuplication) {
  util::Options opts;
  opts.set_bool("pie.share_code", true);
  Fixture fx(core::Method::PIEglobals, opts);
  core::RankContext* rc = fx.make_rank(0);
  EXPECT_EQ(rc->instance->code_base(), fx.priv->primary().code_base());
  // Data still private.
  EXPECT_NE(rc->instance->data_base(), fx.priv->primary().data_base());
  EXPECT_TRUE(fx.arena.contains(rc->slot, rc->instance->data_base()));
  fx.priv->destroy_rank(rc);
}
