// Hierarchical Local Storage (paper §2.3.5 / MPC): variables privatized at
// exactly the hierarchy level they need — process, PE, or rank — to
// minimize memory overhead.

#include <gtest/gtest.h>

#include "core/hls.hpp"
#include "core/privatizer.hpp"
#include "image/loader.hpp"
#include "isomalloc/arena.hpp"
#include "util/error.hpp"

using namespace apv;

namespace {

void noop_body(void*) {}
void* noop_main(void* arg) { return arg; }

struct Fx {
  Fx()
      : arena({.slot_size = std::size_t{4} << 20, .max_slots = 8}) {
    img::ImageBuilder b("hlsprog");
    b.add_global<int>("x", 0);
    b.add_function("mpi_main", &noop_main);
    image = b.build();
    core::ProcessEnv env;
    env.image = &image;
    env.loader = &loader;
    env.arena = &arena;
    priv = std::make_unique<core::Privatizer>(core::Method::PIEglobals,
                                              std::move(env));
  }
  core::RankContext* rank(int r) {
    core::Privatizer::RankParams p;
    p.world_rank = r;
    p.body = &noop_body;
    return priv->create_rank(p);
  }
  iso::IsoArena arena;
  img::ProgramImage image;
  img::Loader loader;
  std::unique_ptr<core::Privatizer> priv;
};

}  // namespace

TEST(Hls, LevelsShareExactlyAsDeclared) {
  Fx fx;
  core::RankContext* r0 = fx.rank(0);
  core::RankContext* r1 = fx.rank(1);

  core::HlsRegion region(/*processes=*/2, /*pes=*/4);
  const auto proc =
      region.declare("per_process", sizeof(int), alignof(int),
                     core::HlsLevel::Process);
  const auto pe = region.declare("per_pe", sizeof(int), alignof(int),
                                 core::HlsLevel::Pe);
  const auto rank = region.declare("per_rank", sizeof(int), alignof(int),
                                   core::HlsLevel::Rank);
  core::HlsVar<int> vproc(&region, proc), vpe(&region, pe),
      vrank(&region, rank);

  // Process level: same storage for both ranks in process 0; distinct
  // from process 1's.
  vproc.at(*r0, 0, 0) = 77;
  EXPECT_EQ(vproc.at(*r1, 0, 1), 77);
  EXPECT_EQ(vproc.at(*r1, 1, 1), 0);

  // PE level: ranks co-scheduled on PE 2 share; PE 3 is separate.
  vpe.at(*r0, 0, 2) = 5;
  EXPECT_EQ(vpe.at(*r1, 0, 2), 5);
  EXPECT_EQ(vpe.at(*r1, 0, 3), 0);

  // Rank level: fully private, and slot-resident (so it migrates).
  vrank.at(*r0, 0, 0) = 10;
  vrank.at(*r1, 0, 0) = 20;
  EXPECT_EQ(vrank.at(*r0, 0, 0), 10);
  EXPECT_EQ(vrank.at(*r1, 0, 0), 20);
  EXPECT_TRUE(fx.arena.contains(r0->slot, &vrank.at(*r0, 0, 0)));

  fx.priv->destroy_rank(r0);
  fx.priv->destroy_rank(r1);
}

TEST(Hls, MemoryFootprintScalesByLevel) {
  Fx fx;
  std::vector<core::RankContext*> ranks;
  for (int r = 0; r < 6; ++r) ranks.push_back(fx.rank(r));

  core::HlsRegion region(/*processes=*/1, /*pes=*/2);
  const std::size_t kSize = 1 << 10;
  const auto proc =
      region.declare("big_proc", kSize, 16, core::HlsLevel::Process);
  const auto pe = region.declare("big_pe", kSize, 16, core::HlsLevel::Pe);
  const auto rk = region.declare("big_rank", kSize, 16,
                                 core::HlsLevel::Rank);
  // Touch everything from every rank (3 ranks per PE).
  for (int r = 0; r < 6; ++r) {
    region.resolve(proc, *ranks[static_cast<std::size_t>(r)], 0, r / 3);
    region.resolve(pe, *ranks[static_cast<std::size_t>(r)], 0, r / 3);
    region.resolve(rk, *ranks[static_cast<std::size_t>(r)], 0, r / 3);
  }
  // The HLS promise: 1x vs 2x vs 6x the footprint.
  EXPECT_EQ(region.bytes_at(core::HlsLevel::Process), kSize);
  EXPECT_EQ(region.bytes_at(core::HlsLevel::Pe), 2 * kSize);
  EXPECT_EQ(region.bytes_at(core::HlsLevel::Rank), 6 * kSize);

  for (auto* rc : ranks) fx.priv->destroy_rank(rc);
}

TEST(Hls, ResolutionIsStableAcrossCalls) {
  Fx fx;
  core::RankContext* r0 = fx.rank(0);
  core::HlsRegion region(1, 1);
  const auto h = region.declare("v", 64, 16, core::HlsLevel::Rank);
  void* first = region.resolve(h, *r0, 0, 0);
  void* second = region.resolve(h, *r0, 0, 0);
  EXPECT_EQ(first, second);
  fx.priv->destroy_rank(r0);
}

TEST(Hls, ValidationErrors) {
  core::HlsRegion region(1, 1);
  EXPECT_THROW(region.declare("zero", 0, 16, core::HlsLevel::Rank),
               util::ApvError);
  EXPECT_THROW(region.declare("align", 8, 24, core::HlsLevel::Rank),
               util::ApvError);
  EXPECT_THROW(core::HlsRegion(0, 1), util::ApvError);
  Fx fx;
  core::RankContext* r0 = fx.rank(0);
  const auto h = region.declare("v", 8, 8, core::HlsLevel::Process);
  EXPECT_THROW(region.resolve(h, *r0, 5, 0), util::ApvError);  // bad owner
  EXPECT_THROW(region.resolve(99, *r0, 0, 0), util::ApvError);
  fx.priv->destroy_rank(r0);
}
