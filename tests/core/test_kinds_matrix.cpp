// The privatization coverage matrix, run end-to-end: for every method, run
// the "kinds" program (one mutable global, one static, one TLS-tagged
// variable, one const) with 4 co-located ranks and check exactly which
// variable kinds came out private. This encodes the paper's Table 1/3
// "Automation" column as executable fact:
//
//   method        global  static  tls   const
//   none            -       -      -      ok     (everything shared)
//   tlsglobals      -       -      ok     ok     (only tagged vars)
//   swapglobals     ok      -      -      ok     (GOT blind to statics)
//   pipglobals      ok      ok     -      ok     (segments duplicated)
//   fsglobals       ok      ok     -      ok
//   pieglobals      ok      ok     ok     ok     (combined with TLSglobals)

#include <gtest/gtest.h>

#include "mpi/runtime.hpp"
#include "test_programs.hpp"

using namespace apv;

namespace {

struct KindsCase {
  core::Method method;
  std::intptr_t expected_mask;  // kKinds*Ok bits for a non-last rank
};

}  // namespace

class KindsMatrix : public ::testing::TestWithParam<KindsCase> {};

TEST_P(KindsMatrix, CoverageMatchesTableOne) {
  const KindsCase& c = GetParam();
  const img::ProgramImage image = test::build_kinds();
  mpi::RuntimeConfig cfg;
  cfg.vps = 4;
  cfg.method = c.method;
  cfg.slot_bytes = std::size_t{8} << 20;
  cfg.options.set("fs.latency_us", "0");
  mpi::Runtime rt(image, cfg);
  rt.run();
  // Rank 0 runs and writes first, so any shared variable gets clobbered by
  // later ranks before the post-barrier read — rank 0's result is the
  // clean probe of what the method actually privatizes.
  EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(0)),
            c.expected_mask)
      << core::method_name(c.method);
  // Every method must leave the (safely shared) const readable.
  for (int r = 0; r < 4; ++r) {
    EXPECT_TRUE(reinterpret_cast<std::intptr_t>(rt.rank_return(r)) &
                test::kKindsConstOk);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table1, KindsMatrix,
    ::testing::Values(
        KindsCase{core::Method::None, test::kKindsConstOk},
        KindsCase{core::Method::TLSglobals,
                  test::kKindsTlsOk | test::kKindsConstOk},
        KindsCase{core::Method::Swapglobals,
                  test::kKindsGlobalOk | test::kKindsConstOk},
        KindsCase{core::Method::PIPglobals,
                  test::kKindsGlobalOk | test::kKindsStaticOk |
                      test::kKindsConstOk},
        KindsCase{core::Method::FSglobals,
                  test::kKindsGlobalOk | test::kKindsStaticOk |
                      test::kKindsConstOk},
        KindsCase{core::Method::PIEglobals,
                  test::kKindsGlobalOk | test::kKindsStaticOk |
                      test::kKindsTlsOk | test::kKindsConstOk}),
    [](const ::testing::TestParamInfo<KindsCase>& info) {
      return core::method_name(info.param.method);
    });

// The constructor-heavy program (heap tables, function pointers, pointers
// back into the data segment) must work under every segment-duplicating
// method — under PIEglobals this exercises constructor-allocation
// replication and the full fix-up transitive closure.
class CtorHeavy : public ::testing::TestWithParam<core::Method> {};

TEST_P(CtorHeavy, PointerChainsPrivatizedPerRank) {
  const img::ProgramImage image = test::build_ctorheavy();
  mpi::RuntimeConfig cfg;
  cfg.vps = 3;
  cfg.method = GetParam();
  cfg.slot_bytes = std::size_t{8} << 20;
  cfg.options.set("fs.latency_us", "0");
  mpi::Runtime rt(image, cfg);
  rt.run();
  for (int r = 0; r < 3; ++r) {
    const auto result = reinterpret_cast<std::intptr_t>(rt.rank_return(r));
    // counter starts at 7 (ctor), rank adds r+1 through the pointer chain;
    // payload[r] = 1000 + r.
    EXPECT_EQ(result, (7 + r + 1) * 10000 + 1000 + r) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SegmentMethods, CtorHeavy,
    ::testing::Values(core::Method::PIPglobals, core::Method::FSglobals,
                      core::Method::PIEglobals),
    [](const ::testing::TestParamInfo<core::Method>& info) {
      return core::method_name(info.param);
    });

TEST(CtorHeavy, PieExactFixupMode) {
  const img::ProgramImage image = test::build_ctorheavy();
  mpi::RuntimeConfig cfg;
  cfg.vps = 3;
  cfg.method = core::Method::PIEglobals;
  cfg.slot_bytes = std::size_t{8} << 20;
  cfg.options.set("pie.fixup", "exact");
  mpi::Runtime rt(image, cfg);
  rt.run();
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(r)),
              (7 + r + 1) * 10000 + 1000 + r);
  }
}
