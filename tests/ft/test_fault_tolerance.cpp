// Fault-tolerance tier tests: buddy checkpoint placement, versioned store
// semantics, deterministic fault injection, dead-letter rerouting, recovery
// planning, and the end-to-end kill-a-PE-and-recover protocol.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <set>
#include <thread>

#include "apps/jacobi.hpp"
#include "comm/cluster.hpp"
#include "ft/checkpoint_store.hpp"
#include "ft/fault_injector.hpp"
#include "ft/recovery.hpp"
#include "mpi/runtime.hpp"
#include "util/error.hpp"

using namespace apv;

namespace {

mpi::RuntimeConfig cfg_pes(core::Method method, int vps, int pes,
                           int nodes = 0) {
  mpi::RuntimeConfig cfg;
  cfg.nodes = nodes > 0 ? nodes : pes;  // default: one PE per node
  cfg.pes_per_node = nodes > 0 ? pes / nodes : 1;
  cfg.vps = vps;
  cfg.method = method;
  cfg.slot_bytes = std::size_t{16} << 20;
  cfg.options.set("fs.latency_us", "0");
  return cfg;
}

img::ProgramImage build_entry(const char* name, img::NativeFn fn) {
  img::ImageBuilder b(name);
  b.add_global<int>("unused", 0);
  b.add_function("mpi_main", fn);
  return b.build();
}

}  // namespace

// --- fault injector (unit) --------------------------------------------------

TEST(FaultInjector, ConfigFromOptions) {
  util::Options o;
  o.set("ft.policy", "epoch");
  o.set("ft.pe", "2");
  o.set("ft.epoch", "3");
  const auto c = ft::FaultInjector::config_from_options(o);
  EXPECT_EQ(c.policy, ft::FaultInjector::Policy::AtEpoch);
  EXPECT_EQ(c.pe, 2);
  EXPECT_EQ(c.epoch, 3u);

  util::Options bad;
  bad.set("ft.policy", "sometimes");
  EXPECT_THROW(ft::FaultInjector::config_from_options(bad), util::ApvError);
}

TEST(FaultInjector, AtEpochIsIdempotentPerEpoch) {
  ft::FaultInjector::Config c;
  c.policy = ft::FaultInjector::Policy::AtEpoch;
  c.pe = 1;
  c.epoch = 2;
  ft::FaultInjector inj(c, /*num_pes=*/4);
  EXPECT_EQ(inj.victim_for_epoch(1), comm::kInvalidPe);
  EXPECT_EQ(inj.victim_for_epoch(2), 1);
  // Every rank asks independently; all must get the same answer, and the
  // kill is counted once.
  EXPECT_EQ(inj.victim_for_epoch(2), 1);
  EXPECT_EQ(inj.victim_for_epoch(3), comm::kInvalidPe);
  EXPECT_EQ(inj.kills(), 1);
}

TEST(FaultInjector, RandomPlanIsSeedDeterministic) {
  ft::FaultInjector::Config c;
  c.policy = ft::FaultInjector::Policy::Random;
  c.seed = 42;
  c.horizon = 6;
  ft::FaultInjector a(c, 8);
  ft::FaultInjector b(c, 8);
  EXPECT_EQ(a.planned_pe(), b.planned_pe());
  EXPECT_EQ(a.planned_epoch(), b.planned_epoch());
  EXPECT_GE(a.planned_epoch(), 1u);
  EXPECT_LE(a.planned_epoch(), 6u);
  EXPECT_GE(a.planned_pe(), 0);
  EXPECT_LT(a.planned_pe(), 8);
}

TEST(FaultInjector, RefusesSinglePeKillPlans) {
  ft::FaultInjector::Config c;
  c.policy = ft::FaultInjector::Policy::AtEpoch;
  c.pe = 0;
  EXPECT_THROW(ft::FaultInjector(c, 1), util::ApvError);
}

// --- recovery planning (unit) -----------------------------------------------

TEST(RecoveryPlan, VictimsGoToLivePesSurvivorsStay) {
  lb::LbStats stats;
  stats.num_pes = 3;
  stats.rank_load = {1.0, 2.0, 3.0, 1.0};
  stats.rank_pe = {0, 1, 1, 2};
  const std::vector<bool> alive = {true, false, true};
  const ft::RecoveryPlan plan =
      ft::plan_recovery(lb::GreedyRefineLb(), stats, alive);
  EXPECT_EQ(plan.victims, (std::vector<int>{1, 2}));
  EXPECT_EQ(plan.survivors, (std::vector<int>{0, 3}));
  EXPECT_EQ(plan.leader, 0);
  ASSERT_EQ(plan.placement.size(), 2u);
  for (const auto& [rank, pe] : plan.placement) {
    EXPECT_TRUE(alive[static_cast<std::size_t>(pe)])
        << "victim " << rank << " placed on dead PE " << pe;
  }
}

TEST(RecoveryPlan, NoVictimsMeansEmptyPlacement) {
  lb::LbStats stats;
  stats.num_pes = 2;
  stats.rank_load = {1.0, 1.0};
  stats.rank_pe = {0, 1};
  const ft::RecoveryPlan plan =
      ft::plan_recovery(lb::GreedyRefineLb(), stats, {true, true});
  EXPECT_TRUE(plan.victims.empty());
  EXPECT_TRUE(plan.placement.empty());
  EXPECT_EQ(plan.leader, 0);
}

// --- checkpoint store (unit) ------------------------------------------------

TEST(CheckpointStore, BuddyCopiesAndVersioning) {
  ft::CheckpointStore store;
  util::ByteBuffer img;
  const char payload[] = "epoch-one";
  img.put_bytes(payload, sizeof payload);
  store.put(/*rank=*/0, /*epoch=*/1, /*resident_pe=*/0, {0, 1},
            std::move(img));
  EXPECT_EQ(store.copy_count(), 2u);
  EXPECT_EQ(store.latest_epoch(0), 1u);

  util::ByteBuffer img2;
  const char payload2[] = "epoch-two";
  img2.put_bytes(payload2, sizeof payload2);
  store.put(0, 2, /*resident_pe=*/1, {1, 0}, std::move(img2));
  store.retire_before(2);
  EXPECT_EQ(store.latest_epoch(0), 2u);
  for (const auto& m : store.copies(0)) {
    EXPECT_EQ(m.epoch, 2u);
    EXPECT_EQ(m.resident_pe, 1);
  }

  // Losing one owner leaves the buddy copy serving fetches.
  store.lose_pe(1);
  EXPECT_TRUE(store.has(0, 2));
  util::ByteBuffer out;
  ASSERT_TRUE(store.fetch(0, 2, out));
  char got[sizeof payload2];
  out.get_bytes(got, sizeof got);
  EXPECT_EQ(std::memcmp(got, payload2, sizeof got), 0);

  // Losing the second owner destroys the last copy, and a dead PE can
  // never be written again.
  store.lose_pe(0);
  EXPECT_FALSE(store.has(0, 2));
  util::ByteBuffer img3;
  img3.put_bytes(payload, sizeof payload);
  store.put(0, 3, 0, {0, 1}, std::move(img3));
  EXPECT_EQ(store.copy_count(), 0u);
}

// --- dead-letter routing (comm unit) ----------------------------------------

TEST(DeadLetter, UserMessagesFollowRecoveredRank) {
  comm::Cluster::Config cc;
  cc.nodes = 2;
  cc.pes_per_node = 1;
  comm::Cluster cluster(cc);
  std::atomic<int> delivered{0};
  for (int pe = 0; pe < 2; ++pe) {
    cluster.pe(pe).set_dispatcher([&delivered](comm::Message&& m) {
      if (m.kind == comm::Message::Kind::UserData && m.tag == 7) ++delivered;
    });
  }
  cluster.resize_location_table(2);
  cluster.set_location(0, 0);
  cluster.set_location(1, 1);
  cluster.start();
  cluster.fail_pe(1);
  EXPECT_TRUE(cluster.pe_failed(1));
  EXPECT_EQ(cluster.num_live_pes(), 1);
  EXPECT_EQ(cluster.alive_mask(), (std::vector<bool>{true, false}));

  // User data addressed to the dead PE waits for its rank to be re-homed.
  comm::Message user;
  user.kind = comm::Message::Kind::UserData;
  user.src_pe = 0;
  user.dst_pe = 1;
  user.dst_rank = 1;
  user.tag = 7;
  cluster.send(std::move(user));
  EXPECT_EQ(cluster.dead_letter_count(), 1u);
  EXPECT_EQ(delivered.load(), 0);

  // Control traffic to a dead machine is simply lost.
  comm::Message ctl;
  ctl.kind = comm::Message::Kind::Control;
  ctl.dst_pe = 1;
  cluster.send(std::move(ctl));
  EXPECT_EQ(cluster.dropped_messages(), 1u);

  // Re-home rank 1 onto the survivor and flush: the message is delivered.
  cluster.set_location(1, 0);
  EXPECT_EQ(cluster.flush_dead_letters(), 1u);
  EXPECT_EQ(cluster.dead_letter_count(), 0u);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (delivered.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(delivered.load(), 1);
  cluster.stop_and_join();
}

// --- buddy placement (runtime) ----------------------------------------------

namespace {

void* buddy_main(void* arg) {
  auto* env = static_cast<mpi::Env*>(arg);
  int* data = env->rank_alloc_array<int>(1024);
  for (int i = 0; i < 1024; ++i) data[i] = env->rank() * 10000 + i;
  const int restored = env->checkpoint_all();
  env->rank_free(data);
  env->barrier();
  return reinterpret_cast<void*>(static_cast<std::intptr_t>(restored));
}

}  // namespace

TEST(BuddyCheckpoint, EveryRankStoredOnSelfAndNextPe) {
  const img::ProgramImage image = build_entry("buddy", &buddy_main);
  mpi::Runtime rt(image, cfg_pes(core::Method::PIEglobals, 4, 4));
  rt.run();
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(r)), 0)
        << "rank " << r << " saw a restore in a fault-free run";
  }
  ft::CheckpointStore& store = rt.checkpoint_store();
  EXPECT_EQ(store.copy_count(), 8u);  // 4 ranks x 2 copies
  EXPECT_GT(store.total_bytes(), 0u);
  for (int r = 0; r < 4; ++r) {
    const auto copies = store.copies(r);
    ASSERT_EQ(copies.size(), 2u) << "rank " << r;
    const comm::PeId home = copies[0].resident_pe;
    std::set<comm::PeId> owners;
    for (const auto& m : copies) {
      EXPECT_EQ(m.epoch, 1u);
      EXPECT_EQ(m.resident_pe, home);
      EXPECT_GT(m.bytes, 0u);
      owners.insert(m.owner_pe);
    }
    EXPECT_EQ(owners, (std::set<comm::PeId>{home, (home + 1) % 4}))
        << "rank " << r;
  }
}

// --- versioned restore (runtime) --------------------------------------------

namespace {

// Checkpoint at epoch 1, mutate, migrate, checkpoint at epoch 2, mutate
// again, then rewind: the restore must land on the *post-migration* epoch-2
// image, and the store must have retired every epoch-1 copy.
void* versioned_main(void* arg) {
  auto* env = static_cast<mpi::Env*>(arg);
  int* counter = env->rank_alloc_array<int>(1);
  *counter = 10;
  const int r1 = env->checkpoint_all();  // epoch 1
  *counter = 20;
  env->migrate_to((env->my_pe() + 1) % env->num_pes());
  const int r2 = env->checkpoint_all();  // epoch 2: retires epoch 1
  if (r2 == 0) {
    *counter = 999;
    env->barrier();
    env->runtime().do_restore(env->state());  // collective rewind
    return nullptr;                           // unreachable
  }
  // Resumed from the epoch-2 image: the counter mutation is gone, and the
  // replayed stack still remembers epoch 1 completing fault-free.
  const std::intptr_t ok = (*counter == 20 && r1 == 0) ? 1 : 0;
  env->barrier();
  return reinterpret_cast<void*>(ok);
}

}  // namespace

TEST(BuddyCheckpoint, RestoreUsesLatestEpochAfterMigration) {
  const img::ProgramImage image = build_entry("versioned", &versioned_main);
  mpi::Runtime rt(image, cfg_pes(core::Method::PIEglobals, 2, 2));
  rt.run();
  EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(0)), 1);
  EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(1)), 1);
  ft::CheckpointStore& store = rt.checkpoint_store();
  for (int r = 0; r < 2; ++r) {
    EXPECT_EQ(store.latest_epoch(r), 2u);
    for (const auto& m : store.copies(r)) {
      EXPECT_EQ(m.epoch, 2u) << "stale epoch-1 copy survived for rank " << r;
      // Both ranks migrated off their starting PE before epoch 2.
      EXPECT_EQ(m.resident_pe, (r + 1) % 2);
    }
  }
}

// --- PIP/FS refuse (runtime) ------------------------------------------------

namespace {

void* refuse_main(void* arg) {
  auto* env = static_cast<mpi::Env*>(arg);
  env->checkpoint_all();  // must throw CheckpointRefused
  env->barrier();
  return nullptr;
}

}  // namespace

class CheckpointRefusedPerMethod
    : public ::testing::TestWithParam<core::Method> {};

TEST_P(CheckpointRefusedPerMethod, PipAndFsRefuseBuddyCheckpoints) {
  // Recovery restores a rank through the migration path, which PIPglobals
  // and FSglobals cannot take; the refusal surfaces as a rank failure.
  const img::ProgramImage image = build_entry("refuse", &refuse_main);
  mpi::Runtime rt(image, cfg_pes(GetParam(), 2, 2));
  EXPECT_THROW(rt.run(), util::ApvError);
}

INSTANTIATE_TEST_SUITE_P(
    NonMigratableMethods, CheckpointRefusedPerMethod,
    ::testing::Values(core::Method::PIPglobals, core::Method::FSglobals),
    [](const ::testing::TestParamInfo<core::Method>& info) {
      return core::method_name(info.param);
    });

// --- end-to-end recovery (runtime + jacobi) ---------------------------------

namespace {

double run_ft_jacobi(core::Method method, bool inject) {
  apps::JacobiParams params;
  params.nx = 12;
  params.ny = 12;
  params.nz = 24;
  params.iters = 8;
  params.residual_every = 4;
  params.checkpoint_every = 2;
  params.code_bytes = 1 << 20;
  params.tag_tls = method == core::Method::TLSglobals;
  const img::ProgramImage image = apps::build_jacobi(params);

  mpi::RuntimeConfig cfg = cfg_pes(method, 4, 4);
  if (inject) {
    // Kill PE 1 at the second checkpoint (iteration 4 of 8): half the
    // solve runs on the degraded machine.
    cfg.options.set("ft.policy", "epoch");
    cfg.options.set("ft.pe", "1");
    cfg.options.set("ft.epoch", "2");
  }
  mpi::Runtime rt(image, cfg);
  rt.run();
  if (inject) {
    EXPECT_GT(rt.recovery_count(), 0u);
    EXPECT_GT(rt.recovery_bytes(), 0u);
    EXPECT_EQ(rt.cluster().num_live_pes(), 3);
    EXPECT_NE(rt.fault_injector(), nullptr);
    if (rt.fault_injector() != nullptr) {
      EXPECT_EQ(rt.fault_injector()->kills(), 1);
    }
  }
  const double residual = apps::jacobi_result(rt.rank_return(0));
  EXPECT_TRUE(std::isfinite(residual));
  EXPECT_GT(residual, 0.0);
  return residual;
}

}  // namespace

class RecoveryPerMethod : public ::testing::TestWithParam<core::Method> {};

TEST_P(RecoveryPerMethod, KillOnePeAndRecoverBitIdentical) {
  const double clean = run_ft_jacobi(GetParam(), /*inject=*/false);
  const double recovered = run_ft_jacobi(GetParam(), /*inject=*/true);
  // Recovery rewinds every rank to the last epoch and replays: arithmetic
  // is unchanged, so the residual must match the fault-free run exactly.
  EXPECT_EQ(recovered, clean);
}

INSTANTIATE_TEST_SUITE_P(
    MigratableMethods, RecoveryPerMethod,
    ::testing::Values(core::Method::TLSglobals, core::Method::PIEglobals),
    [](const ::testing::TestParamInfo<core::Method>& info) {
      return core::method_name(info.param);
    });

// --- recovery under small-message aggregation -------------------------------

namespace {

// Two ranks, two PEs, kill the victim at the second epoch. This is the
// tightest shape for the commit-point race: with only two ranks the
// dissemination barrier lets the leader exit the instant the victim's token
// arrives, while the leader's own token to the victim may still be sitting
// in its PE's aggregation bin (the recovery leader then spin-yields, which
// keeps its scheduler busy). Regression for the deadlock where fail_pe was
// declared before the victim finished the epoch barrier and the binned
// token was diverted to the dead-letter queue.
void* two_rank_kill_main(void* arg) {
  auto* env = static_cast<mpi::Env*>(arg);
  const int me = env->rank();
  // Large enough that the pack/idle timing matches the failing shape: the
  // race never showed with toy heaps, reliably did from ~10 MB up.
  constexpr std::size_t kBytes = 10 << 20;
  auto* buf = static_cast<unsigned char*>(env->rank_malloc(kBytes));
  for (std::size_t i = 0; i < kBytes; ++i) {
    buf[i] = static_cast<unsigned char>(i * 17 + me);
  }
  const int r1 = env->checkpoint_all();  // epoch 1: fault-free
  const int r2 = env->checkpoint_all();  // epoch 2: PE 1 dies here
  bool intact = true;
  for (std::size_t i = 0; i < kBytes; ++i) {
    if (buf[i] != static_cast<unsigned char>(i * 17 + me)) intact = false;
  }
  env->rank_free(buf);
  env->barrier();
  return reinterpret_cast<void*>(
      static_cast<std::intptr_t>(intact && r1 == 0 && r2 == 1 ? 1 : 0));
}

}  // namespace

TEST(Recovery, TwoRankEpochKillWithAggregation) {
  // A couple of repetitions: the original hang was a scheduling race.
  for (int rep = 0; rep < 2; ++rep) {
    const img::ProgramImage image =
        build_entry("tworank", &two_rank_kill_main);
    mpi::RuntimeConfig cfg =
        cfg_pes(core::Method::PIEglobals, 2, 2, /*nodes=*/2);
    cfg.slot_bytes = std::size_t{64} << 20;
    cfg.options.set("ft.policy", "epoch");
    cfg.options.set("ft.pe", "1");
    cfg.options.set("ft.epoch", "2");
    cfg.options.set("mpi.timeout_s", "60");
    mpi::Runtime rt(image, cfg);
    rt.run();
    for (int r = 0; r < 2; ++r) {
      EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(r)), 1)
          << "rep " << rep << " rank " << r;
    }
    EXPECT_EQ(rt.recovery_count(), 1u) << "rep " << rep;
    EXPECT_EQ(rt.cluster().num_live_pes(), 1) << "rep " << rep;
  }
}
