// Fault-tolerance tier tests: buddy checkpoint placement, versioned store
// semantics, deterministic fault injection, dead-letter rerouting, recovery
// planning, and the end-to-end kill-a-PE-and-recover protocol.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <set>
#include <thread>

#include "apps/jacobi.hpp"
#include "comm/cluster.hpp"
#include "comm/payload.hpp"
#include "ft/checkpoint_store.hpp"
#include "ft/fault_injector.hpp"
#include "ft/recovery.hpp"
#include "isomalloc/arena.hpp"
#include "isomalloc/dirty_tracker.hpp"
#include "isomalloc/pack.hpp"
#include "isomalloc/slot_heap.hpp"
#include "mpi/runtime.hpp"
#include "util/error.hpp"
#include "util/sanitizers.hpp"
#include "util/stats.hpp"

using namespace apv;

namespace {

mpi::RuntimeConfig cfg_pes(core::Method method, int vps, int pes,
                           int nodes = 0) {
  mpi::RuntimeConfig cfg;
  cfg.nodes = nodes > 0 ? nodes : pes;  // default: one PE per node
  cfg.pes_per_node = nodes > 0 ? pes / nodes : 1;
  cfg.vps = vps;
  cfg.method = method;
  cfg.slot_bytes = std::size_t{16} << 20;
  cfg.options.set("fs.latency_us", "0");
  return cfg;
}

img::ProgramImage build_entry(const char* name, img::NativeFn fn) {
  img::ImageBuilder b(name);
  b.add_global<int>("unused", 0);
  b.add_function("mpi_main", fn);
  return b.build();
}

}  // namespace

// --- fault injector (unit) --------------------------------------------------

TEST(FaultInjector, ConfigFromOptions) {
  util::Options o;
  o.set("ft.policy", "epoch");
  o.set("ft.pe", "2");
  o.set("ft.epoch", "3");
  const auto c = ft::FaultInjector::config_from_options(o);
  EXPECT_EQ(c.policy, ft::FaultInjector::Policy::AtEpoch);
  EXPECT_EQ(c.pe, 2);
  EXPECT_EQ(c.epoch, 3u);

  util::Options bad;
  bad.set("ft.policy", "sometimes");
  EXPECT_THROW(ft::FaultInjector::config_from_options(bad), util::ApvError);
}

TEST(FaultInjector, AtEpochIsIdempotentPerEpoch) {
  ft::FaultInjector::Config c;
  c.policy = ft::FaultInjector::Policy::AtEpoch;
  c.pe = 1;
  c.epoch = 2;
  ft::FaultInjector inj(c, /*num_pes=*/4);
  EXPECT_EQ(inj.victim_for_epoch(1), comm::kInvalidPe);
  EXPECT_EQ(inj.victim_for_epoch(2), 1);
  // Every rank asks independently; all must get the same answer, and the
  // kill is counted once.
  EXPECT_EQ(inj.victim_for_epoch(2), 1);
  EXPECT_EQ(inj.victim_for_epoch(3), comm::kInvalidPe);
  EXPECT_EQ(inj.kills(), 1);
}

TEST(FaultInjector, RandomPlanIsSeedDeterministic) {
  ft::FaultInjector::Config c;
  c.policy = ft::FaultInjector::Policy::Random;
  c.seed = 42;
  c.horizon = 6;
  ft::FaultInjector a(c, 8);
  ft::FaultInjector b(c, 8);
  EXPECT_EQ(a.planned_pe(), b.planned_pe());
  EXPECT_EQ(a.planned_epoch(), b.planned_epoch());
  EXPECT_GE(a.planned_epoch(), 1u);
  EXPECT_LE(a.planned_epoch(), 6u);
  EXPECT_GE(a.planned_pe(), 0);
  EXPECT_LT(a.planned_pe(), 8);
}

TEST(FaultInjector, RefusesSinglePeKillPlans) {
  ft::FaultInjector::Config c;
  c.policy = ft::FaultInjector::Policy::AtEpoch;
  c.pe = 0;
  EXPECT_THROW(ft::FaultInjector(c, 1), util::ApvError);
}

// --- recovery planning (unit) -----------------------------------------------

TEST(RecoveryPlan, VictimsGoToLivePesSurvivorsStay) {
  lb::LbStats stats;
  stats.num_pes = 3;
  stats.rank_load = {1.0, 2.0, 3.0, 1.0};
  stats.rank_pe = {0, 1, 1, 2};
  const std::vector<bool> alive = {true, false, true};
  const ft::RecoveryPlan plan =
      ft::plan_recovery(lb::GreedyRefineLb(), stats, alive);
  EXPECT_EQ(plan.victims, (std::vector<int>{1, 2}));
  EXPECT_EQ(plan.survivors, (std::vector<int>{0, 3}));
  EXPECT_EQ(plan.leader, 0);
  ASSERT_EQ(plan.placement.size(), 2u);
  for (const auto& [rank, pe] : plan.placement) {
    EXPECT_TRUE(alive[static_cast<std::size_t>(pe)])
        << "victim " << rank << " placed on dead PE " << pe;
  }
}

TEST(RecoveryPlan, NoVictimsMeansEmptyPlacement) {
  lb::LbStats stats;
  stats.num_pes = 2;
  stats.rank_load = {1.0, 1.0};
  stats.rank_pe = {0, 1};
  const ft::RecoveryPlan plan =
      ft::plan_recovery(lb::GreedyRefineLb(), stats, {true, true});
  EXPECT_TRUE(plan.victims.empty());
  EXPECT_TRUE(plan.placement.empty());
  EXPECT_EQ(plan.leader, 0);
}

// --- checkpoint store (unit) ------------------------------------------------

TEST(CheckpointStore, BuddyCopiesAndVersioning) {
  ft::CheckpointStore store;
  util::ByteBuffer img;
  const char payload[] = "epoch-one";
  img.put_bytes(payload, sizeof payload);
  store.put(/*rank=*/0, /*epoch=*/1, /*resident_pe=*/0, {0, 1},
            std::move(img));
  EXPECT_EQ(store.copy_count(), 2u);
  EXPECT_EQ(store.latest_epoch(0), 1u);

  util::ByteBuffer img2;
  const char payload2[] = "epoch-two";
  img2.put_bytes(payload2, sizeof payload2);
  store.put(0, 2, /*resident_pe=*/1, {1, 0}, std::move(img2));
  store.retire_before(2);
  EXPECT_EQ(store.latest_epoch(0), 2u);
  for (const auto& m : store.copies(0)) {
    EXPECT_EQ(m.epoch, 2u);
    EXPECT_EQ(m.resident_pe, 1);
  }

  // Losing one owner leaves the buddy copy serving fetches.
  store.lose_pe(1);
  EXPECT_TRUE(store.has(0, 2));
  util::ByteBuffer out;
  ASSERT_TRUE(store.fetch(0, 2, out));
  char got[sizeof payload2];
  out.get_bytes(got, sizeof got);
  EXPECT_EQ(std::memcmp(got, payload2, sizeof got), 0);

  // Losing the second owner destroys the last copy, and a dead PE can
  // never be written again.
  store.lose_pe(0);
  EXPECT_FALSE(store.has(0, 2));
  util::ByteBuffer img3;
  img3.put_bytes(payload, sizeof payload);
  store.put(0, 3, 0, {0, 1}, std::move(img3));
  EXPECT_EQ(store.copy_count(), 0u);
}

// --- dead-letter routing (comm unit) ----------------------------------------

TEST(DeadLetter, UserMessagesFollowRecoveredRank) {
  comm::Cluster::Config cc;
  cc.nodes = 2;
  cc.pes_per_node = 1;
  comm::Cluster cluster(cc);
  std::atomic<int> delivered{0};
  for (int pe = 0; pe < 2; ++pe) {
    cluster.pe(pe).set_dispatcher([&delivered](comm::Message&& m) {
      if (m.kind == comm::Message::Kind::UserData && m.tag == 7) ++delivered;
    });
  }
  cluster.resize_location_table(2);
  cluster.set_location(0, 0);
  cluster.set_location(1, 1);
  cluster.start();
  cluster.fail_pe(1);
  EXPECT_TRUE(cluster.pe_failed(1));
  EXPECT_EQ(cluster.num_live_pes(), 1);
  EXPECT_EQ(cluster.alive_mask(), (std::vector<bool>{true, false}));

  // User data addressed to the dead PE waits for its rank to be re-homed.
  comm::Message user;
  user.kind = comm::Message::Kind::UserData;
  user.src_pe = 0;
  user.dst_pe = 1;
  user.dst_rank = 1;
  user.tag = 7;
  cluster.send(std::move(user));
  EXPECT_EQ(cluster.dead_letter_count(), 1u);
  EXPECT_EQ(delivered.load(), 0);

  // Control traffic to a dead machine is simply lost.
  comm::Message ctl;
  ctl.kind = comm::Message::Kind::Control;
  ctl.dst_pe = 1;
  cluster.send(std::move(ctl));
  EXPECT_EQ(cluster.dropped_messages(), 1u);

  // Re-home rank 1 onto the survivor and flush: the message is delivered.
  cluster.set_location(1, 0);
  EXPECT_EQ(cluster.flush_dead_letters(), 1u);
  EXPECT_EQ(cluster.dead_letter_count(), 0u);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (delivered.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(delivered.load(), 1);
  cluster.stop_and_join();
}

// --- buddy placement (runtime) ----------------------------------------------

namespace {

void* buddy_main(void* arg) {
  auto* env = static_cast<mpi::Env*>(arg);
  int* data = env->rank_alloc_array<int>(1024);
  for (int i = 0; i < 1024; ++i) data[i] = env->rank() * 10000 + i;
  const int restored = env->checkpoint_all();
  env->rank_free(data);
  env->barrier();
  return reinterpret_cast<void*>(static_cast<std::intptr_t>(restored));
}

}  // namespace

TEST(BuddyCheckpoint, EveryRankStoredOnSelfAndNextPe) {
  const img::ProgramImage image = build_entry("buddy", &buddy_main);
  mpi::Runtime rt(image, cfg_pes(core::Method::PIEglobals, 4, 4));
  rt.run();
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(r)), 0)
        << "rank " << r << " saw a restore in a fault-free run";
  }
  ft::CheckpointStore& store = rt.checkpoint_store();
  EXPECT_EQ(store.copy_count(), 8u);  // 4 ranks x 2 copies
  EXPECT_GT(store.total_bytes(), 0u);
  for (int r = 0; r < 4; ++r) {
    const auto copies = store.copies(r);
    ASSERT_EQ(copies.size(), 2u) << "rank " << r;
    const comm::PeId home = copies[0].resident_pe;
    std::set<comm::PeId> owners;
    for (const auto& m : copies) {
      EXPECT_EQ(m.epoch, 1u);
      EXPECT_EQ(m.resident_pe, home);
      EXPECT_GT(m.bytes, 0u);
      owners.insert(m.owner_pe);
    }
    EXPECT_EQ(owners, (std::set<comm::PeId>{home, (home + 1) % 4}))
        << "rank " << r;
  }
}

// --- versioned restore (runtime) --------------------------------------------

namespace {

// Checkpoint at epoch 1, mutate, migrate, checkpoint at epoch 2, mutate
// again, then rewind: the restore must land on the *post-migration* epoch-2
// image, and the store must have retired every epoch-1 copy.
void* versioned_main(void* arg) {
  auto* env = static_cast<mpi::Env*>(arg);
  int* counter = env->rank_alloc_array<int>(1);
  *counter = 10;
  const int r1 = env->checkpoint_all();  // epoch 1
  *counter = 20;
  env->migrate_to((env->my_pe() + 1) % env->num_pes());
  const int r2 = env->checkpoint_all();  // epoch 2: retires epoch 1
  if (r2 == 0) {
    *counter = 999;
    env->barrier();
    env->runtime().do_restore(env->state());  // collective rewind
    return nullptr;                           // unreachable
  }
  // Resumed from the epoch-2 image: the counter mutation is gone, and the
  // replayed stack still remembers epoch 1 completing fault-free.
  const std::intptr_t ok = (*counter == 20 && r1 == 0) ? 1 : 0;
  env->barrier();
  return reinterpret_cast<void*>(ok);
}

}  // namespace

TEST(BuddyCheckpoint, RestoreUsesLatestEpochAfterMigration) {
  const img::ProgramImage image = build_entry("versioned", &versioned_main);
  mpi::Runtime rt(image, cfg_pes(core::Method::PIEglobals, 2, 2));
  rt.run();
  EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(0)), 1);
  EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(1)), 1);
  ft::CheckpointStore& store = rt.checkpoint_store();
  for (int r = 0; r < 2; ++r) {
    EXPECT_EQ(store.latest_epoch(r), 2u);
    for (const auto& m : store.copies(r)) {
      EXPECT_EQ(m.epoch, 2u) << "stale epoch-1 copy survived for rank " << r;
      // Both ranks migrated off their starting PE before epoch 2.
      EXPECT_EQ(m.resident_pe, (r + 1) % 2);
    }
  }
}

// --- PIP/FS refuse (runtime) ------------------------------------------------

namespace {

void* refuse_main(void* arg) {
  auto* env = static_cast<mpi::Env*>(arg);
  env->checkpoint_all();  // must throw CheckpointRefused
  env->barrier();
  return nullptr;
}

}  // namespace

class CheckpointRefusedPerMethod
    : public ::testing::TestWithParam<core::Method> {};

TEST_P(CheckpointRefusedPerMethod, PipAndFsRefuseBuddyCheckpoints) {
  // Recovery restores a rank through the migration path, which PIPglobals
  // and FSglobals cannot take; the refusal surfaces as a rank failure.
  const img::ProgramImage image = build_entry("refuse", &refuse_main);
  mpi::Runtime rt(image, cfg_pes(GetParam(), 2, 2));
  EXPECT_THROW(rt.run(), util::ApvError);
}

INSTANTIATE_TEST_SUITE_P(
    NonMigratableMethods, CheckpointRefusedPerMethod,
    ::testing::Values(core::Method::PIPglobals, core::Method::FSglobals),
    [](const ::testing::TestParamInfo<core::Method>& info) {
      return core::method_name(info.param);
    });

// --- end-to-end recovery (runtime + jacobi) ---------------------------------

namespace {

double run_ft_jacobi(core::Method method, bool inject, bool delta = true) {
  apps::JacobiParams params;
  params.nx = 12;
  params.ny = 12;
  params.nz = 24;
  params.iters = 8;
  params.residual_every = 4;
  params.checkpoint_every = 2;
  params.code_bytes = 1 << 20;
  params.tag_tls = method == core::Method::TLSglobals;
  const img::ProgramImage image = apps::build_jacobi(params);

  mpi::RuntimeConfig cfg = cfg_pes(method, 4, 4);
  cfg.options.set("ft.delta", delta ? "on" : "off");
  if (inject) {
    // Kill PE 1 at the second checkpoint (iteration 4 of 8): half the
    // solve runs on the degraded machine.
    cfg.options.set("ft.policy", "epoch");
    cfg.options.set("ft.pe", "1");
    cfg.options.set("ft.epoch", "2");
  }
  mpi::Runtime rt(image, cfg);
  rt.run();
  const util::Counters ckpt = rt.ckpt_counters();
  if (delta) {
    // Epoch 1 is a full base; the later epochs ride the dirty bitmap.
    EXPECT_GT(ckpt.get("ckpt_images_delta"), 0u);
  } else {
    EXPECT_EQ(ckpt.get("ckpt_images_delta"), 0u);
    EXPECT_EQ(ckpt.get("ckpt_bytes_delta"), 0u);
  }
  if (inject) {
    EXPECT_GT(rt.recovery_count(), 0u);
    EXPECT_GT(rt.recovery_bytes(), 0u);
    EXPECT_EQ(rt.cluster().num_live_pes(), 3);
    EXPECT_NE(rt.fault_injector(), nullptr);
    if (rt.fault_injector() != nullptr) {
      EXPECT_EQ(rt.fault_injector()->kills(), 1);
    }
  }
  const double residual = apps::jacobi_result(rt.rank_return(0));
  EXPECT_TRUE(std::isfinite(residual));
  EXPECT_GT(residual, 0.0);
  return residual;
}

}  // namespace

class RecoveryPerMethod : public ::testing::TestWithParam<core::Method> {};

TEST_P(RecoveryPerMethod, KillOnePeAndRecoverBitIdentical) {
  const double clean = run_ft_jacobi(GetParam(), /*inject=*/false);
  const double recovered = run_ft_jacobi(GetParam(), /*inject=*/true);
  // Recovery rewinds every rank to the last epoch and replays: arithmetic
  // is unchanged, so the residual must match the fault-free run exactly.
  EXPECT_EQ(recovered, clean);
}

INSTANTIATE_TEST_SUITE_P(
    MigratableMethods, RecoveryPerMethod,
    ::testing::Values(core::Method::TLSglobals, core::Method::PIEglobals),
    [](const ::testing::TestParamInfo<core::Method>& info) {
      return core::method_name(info.param);
    });

// --- recovery under small-message aggregation -------------------------------

namespace {

// Two ranks, two PEs, kill the victim at the second epoch. This is the
// tightest shape for the commit-point race: with only two ranks the
// dissemination barrier lets the leader exit the instant the victim's token
// arrives, while the leader's own token to the victim may still be sitting
// in its PE's aggregation bin (the recovery leader then spin-yields, which
// keeps its scheduler busy). Regression for the deadlock where fail_pe was
// declared before the victim finished the epoch barrier and the binned
// token was diverted to the dead-letter queue.
void* two_rank_kill_main(void* arg) {
  auto* env = static_cast<mpi::Env*>(arg);
  const int me = env->rank();
  // Large enough that the pack/idle timing matches the failing shape: the
  // race never showed with toy heaps, reliably did from ~10 MB up.
  constexpr std::size_t kBytes = 10 << 20;
  auto* buf = static_cast<unsigned char*>(env->rank_malloc(kBytes));
  for (std::size_t i = 0; i < kBytes; ++i) {
    buf[i] = static_cast<unsigned char>(i * 17 + me);
  }
  const int r1 = env->checkpoint_all();  // epoch 1: fault-free
  const int r2 = env->checkpoint_all();  // epoch 2: PE 1 dies here
  bool intact = true;
  for (std::size_t i = 0; i < kBytes; ++i) {
    if (buf[i] != static_cast<unsigned char>(i * 17 + me)) intact = false;
  }
  env->rank_free(buf);
  env->barrier();
  return reinterpret_cast<void*>(
      static_cast<std::intptr_t>(intact && r1 == 0 && r2 == 1 ? 1 : 0));
}

}  // namespace

// --- delta chains in the store (unit) ----------------------------------------

namespace {

// Builds genuine pack streams (the store's consolidation path parses and
// folds them, so synthetic bytes will not do): a 1 MB slot with a heap and
// one patterned allocation, mutated under the dirty tracker between epochs.
struct DeltaChainRig {
  iso::IsoArena arena{{.slot_size = std::size_t{1} << 20, .max_slots = 2}};
  iso::DirtyTracker tracker{arena};
  iso::SlotId slot = arena.acquire_slot();
  iso::SlotHeap* heap =
      iso::SlotHeap::format(arena.slot_base(slot), arena.slot_size());
  unsigned char* data =
      static_cast<unsigned char*>(heap->alloc(std::size_t{32} << 10));

  DeltaChainRig() {
    for (std::size_t i = 0; i < (std::size_t{32} << 10); ++i) {
      data[i] = static_cast<unsigned char>(i * 13 + 1);
    }
  }

  std::size_t prefix() const {
    return iso::packed_payload_size(arena, slot, iso::PackMode::Touched);
  }

  util::ByteBuffer pack_full() {
    util::ByteBuffer out;
    iso::pack_slot(arena, slot, iso::PackMode::Touched, out);
    return out;
  }

  // Arms, applies a sparse epoch-specific mutation, and packs the delta.
  util::ByteBuffer mutate_and_pack_delta(std::uint32_t base_epoch,
                                         unsigned seed) {
    tracker.arm(slot);
    for (std::size_t i = 0; i < 2048; ++i) {
      data[i] = static_cast<unsigned char>(i * 7 + seed);
    }
    util::ByteBuffer out;
    iso::pack_slot_delta(arena, slot, tracker.dirty_regions(slot, prefix()),
                         base_epoch, out);
    tracker.disarm(slot);
    return out;
  }

  // Wrecks the slot, applies `chain` in order, and compares the prefix
  // against `expect`. Raw (unsanitized) copies throughout: the slot's freed
  // heap interiors are ASan-quarantined — the wreck deliberately scribbles
  // into them, and the restored prefix legitimately spans them.
  void verify_chain_restores(const std::vector<comm::Payload>& chain,
                             const std::vector<unsigned char>& expect) {
    util::raw_memset(arena.slot_base(slot), 0xEE, arena.slot_size());
    for (const comm::Payload& img : chain) {
      util::ByteReader r(img.data(), img.size());
      iso::unpack_slot(arena, slot, r);
    }
    ASSERT_EQ(expect.size(), prefix());
    std::vector<unsigned char> got(expect.size());
    util::raw_memcpy(got.data(), arena.slot_base(slot), got.size());
    EXPECT_EQ(std::memcmp(expect.data(), got.data(), expect.size()), 0);
    EXPECT_TRUE(
        iso::SlotHeap::at(arena.slot_base(slot))->check_integrity());
  }

  std::vector<unsigned char> snapshot_prefix() const {
    std::vector<unsigned char> out(prefix());
    util::raw_memcpy(out.data(), arena.slot_base(slot), out.size());
    return out;
  }
};

}  // namespace

TEST(CheckpointStore, DeltaChainMaterializesAndRetireKeepsLinks) {
  DeltaChainRig rig;
  ft::CheckpointStore store;
  store.put(0, 1, 0, {0, 1}, rig.pack_full());
  store.put_delta(0, 2, 1, 0, {0, 1}, rig.mutate_and_pack_delta(1, 2));
  store.put_delta(0, 3, 2, 0, {0, 1}, rig.mutate_and_pack_delta(2, 3));

  EXPECT_EQ(store.latest_epoch(0), 3u);
  EXPECT_TRUE(store.has(0, 2));
  EXPECT_TRUE(store.has(0, 3));
  EXPECT_EQ(store.chain_length(0, 3), 2u);

  // Retiring everything before the newest epoch must keep the whole chain:
  // the epoch-3 delta is useless without epochs 1 and 2.
  store.retire_rank_before(0, 3);
  EXPECT_TRUE(store.has(0, 3));
  EXPECT_EQ(store.copies(0).size(), 6u);

  const std::vector<unsigned char> expect = rig.snapshot_prefix();
  std::vector<comm::Payload> chain;
  ASSERT_TRUE(store.fetch_chain(0, 3, chain));
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_FALSE(iso::packed_image_is_delta(
      util::ByteReader(chain[0].data(), chain[0].size())));
  rig.verify_chain_restores(chain, expect);

  // Once a newer full base lands, the old chain really is garbage.
  store.put(0, 4, 0, {0, 1}, rig.pack_full());
  store.retire_rank_before(0, 4);
  EXPECT_EQ(store.latest_epoch(0), 4u);
  EXPECT_FALSE(store.has(0, 3));
  for (const auto& m : store.copies(0)) EXPECT_EQ(m.epoch, 4u);
}

TEST(CheckpointStore, ConsolidationFoldsOldestDeltaIntoBase) {
  DeltaChainRig rig;
  ft::CheckpointStore store;
  store.set_chain_limit(1);
  store.put(0, 1, 0, {0, 1}, rig.pack_full());
  store.put_delta(0, 2, 1, 0, {0, 1}, rig.mutate_and_pack_delta(1, 20));
  EXPECT_EQ(store.consolidations(), 0u);

  // The second delta pushes the chain past the limit: epoch 2 is folded
  // into its base off the hot path and the orphaned base is dropped.
  store.put_delta(0, 3, 2, 0, {0, 1}, rig.mutate_and_pack_delta(2, 30));
  EXPECT_EQ(store.consolidations(), 1u);
  EXPECT_EQ(store.chain_length(0, 3), 1u);
  EXPECT_FALSE(store.has(0, 1));
  for (const auto& m : store.copies(0)) {
    if (m.epoch == 2) EXPECT_FALSE(m.is_delta) << "epoch 2 was not folded";
  }

  const std::vector<unsigned char> expect = rig.snapshot_prefix();
  std::vector<comm::Payload> chain;
  ASSERT_TRUE(store.fetch_chain(0, 3, chain));
  ASSERT_EQ(chain.size(), 2u);
  rig.verify_chain_restores(chain, expect);
}

TEST(CheckpointStore, BrokenChainFallsBackAndBuddySurvivesOneLoss) {
  const auto img = [](const char* s) {
    util::ByteBuffer b;
    b.put_bytes(s, std::strlen(s) + 1);
    return b;
  };

  // Base owned only by PE 0, delta only by PE 1: losing PE 0 severs the
  // chain even though the delta's own bytes survive, and the newest-epoch
  // index must notice on its rescan.
  ft::CheckpointStore severed;
  severed.put(0, 1, 0, {0}, img("base"));
  severed.put_delta(0, 2, 1, 0, {1}, img("delta"));
  EXPECT_EQ(severed.latest_epoch(0), 2u);
  severed.lose_pe(0);
  EXPECT_FALSE(severed.has(0, 2));
  EXPECT_EQ(severed.latest_epoch(0), 0u);

  // With buddy copies of every link, one PE loss leaves the chain whole.
  ft::CheckpointStore buddy;
  buddy.put(1, 1, 0, {0, 1}, img("base"));
  buddy.put_delta(1, 2, 1, 0, {0, 1}, img("delta"));
  buddy.lose_pe(0);
  EXPECT_TRUE(buddy.has(1, 2));
  EXPECT_EQ(buddy.latest_epoch(1), 2u);
  util::ByteBuffer out;
  ASSERT_TRUE(buddy.fetch(1, 2, out));
  char got[6];
  out.get_bytes(got, sizeof got);
  EXPECT_STREQ(got, "delta");
}

// --- delta checkpoints (runtime) ---------------------------------------------

namespace {

void* delta_epochs_main(void* arg) {
  auto* env = static_cast<mpi::Env*>(arg);
  int* data = env->rank_alloc_array<int>(4096);
  for (int i = 0; i < 4096; ++i) data[i] = env->rank() + i;
  int rc = env->checkpoint_all();  // epoch 1: first image is a full base
  data[0] += 1;
  rc += env->checkpoint_all();  // epoch 2: delta
  data[1] += 1;
  rc += env->checkpoint_all();  // epoch 3: delta
  env->rank_free(data);
  env->barrier();
  return reinterpret_cast<void*>(static_cast<std::intptr_t>(rc));
}

void* migrate_delta_main(void* arg) {
  auto* env = static_cast<mpi::Env*>(arg);
  int* data = env->rank_alloc_array<int>(4096);
  const int me = env->rank();
  for (int i = 0; i < 4096; ++i) data[i] = me * 7 + i;
  int rc = env->checkpoint_all();  // epoch 1: full
  data[0] += 1;
  rc += env->checkpoint_all();  // epoch 2: delta
  // Migration rewrites the slot wholesale on the destination: the dirty
  // bitmap is void, so the next image must fall back to a full base.
  env->migrate_to((env->my_pe() + 1) % env->num_pes());
  data[1] += 1;
  rc += env->checkpoint_all();  // epoch 3: full again
  data[2] += 1;
  rc += env->checkpoint_all();  // epoch 4: delta (tracker re-armed)
  const bool ok = rc == 0 && data[0] == me * 7 + 1 &&
                  data[1] == me * 7 + 2 && data[2] == me * 7 + 3;
  env->rank_free(data);
  env->barrier();
  return reinterpret_cast<void*>(static_cast<std::intptr_t>(ok ? 1 : 0));
}

}  // namespace

TEST(DeltaCheckpoint, FirstImageFullThenDeltas) {
  const img::ProgramImage image =
      build_entry("deltaepochs", &delta_epochs_main);
  mpi::Runtime rt(image, cfg_pes(core::Method::PIEglobals, 2, 2));
  rt.run();
  for (int r = 0; r < 2; ++r) {
    EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(r)), 0)
        << "rank " << r;
  }
  const util::Counters c = rt.ckpt_counters();
  EXPECT_EQ(c.get("ckpt_images_full"), 2u);   // epoch 1, both ranks
  EXPECT_EQ(c.get("ckpt_images_delta"), 4u);  // epochs 2-3, both ranks
  EXPECT_GT(c.get("ckpt_bytes_full"), 0u);
  EXPECT_GT(c.get("ckpt_bytes_delta"), 0u);
  EXPECT_GT(c.get("ckpt_pages_dirty"), 0u);
  // Steady state: the average delta is smaller than the average full image.
  EXPECT_LT(c.get("ckpt_bytes_delta") / 4, c.get("ckpt_bytes_full") / 2);
}

TEST(DeltaCheckpoint, MigrationForcesFullBaseThenDeltasResume) {
  const img::ProgramImage image =
      build_entry("migdelta", &migrate_delta_main);
  mpi::Runtime rt(image, cfg_pes(core::Method::PIEglobals, 2, 2));
  rt.run();
  for (int r = 0; r < 2; ++r) {
    EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(r)), 1)
        << "rank " << r;
  }
  // Epochs 1 and 3 are full (initial base, then the post-migration rebase);
  // epochs 2 and 4 are deltas — the tracker re-armed after the migration.
  const util::Counters c = rt.ckpt_counters();
  EXPECT_EQ(c.get("ckpt_images_full"), 4u);
  EXPECT_EQ(c.get("ckpt_images_delta"), 4u);
}

TEST(DeltaCheckpoint, DeltaOffRecoveryMatchesDeltaOn) {
  // Same solve, same injected kill; the only difference is ft.delta. The
  // restored arithmetic must be bit-identical either way (and the off run's
  // zero delta counters are asserted inside the helper).
  const double with_delta =
      run_ft_jacobi(core::Method::PIEglobals, /*inject=*/true, true);
  const double without_delta =
      run_ft_jacobi(core::Method::PIEglobals, /*inject=*/true, false);
  EXPECT_EQ(with_delta, without_delta);
}

namespace {

// Three checkpoints with distinct sparse mutations between them, then PE 1
// dies at the epoch-3 commit: every rank restores from a full-plus-two-
// deltas chain, and both mutations must be present afterwards.
void* chain_kill_main(void* arg) {
  auto* env = static_cast<mpi::Env*>(arg);
  const int me = env->rank();
  constexpr std::size_t kInts = std::size_t{1} << 16;
  int* data = env->rank_alloc_array<int>(kInts);
  for (std::size_t i = 0; i < kInts; ++i) {
    data[i] = me * 1000 + static_cast<int>(i);
  }
  const int r1 = env->checkpoint_all();  // epoch 1: full base
  for (std::size_t i = 0; i < kInts; i += 997) data[i] += 7;
  const int r2 = env->checkpoint_all();  // epoch 2: delta
  for (std::size_t i = 0; i < kInts; i += 1009) data[i] += 11;
  const int r3 = env->checkpoint_all();  // epoch 3: delta; PE 1 dies here
  bool ok = r1 == 0 && r2 == 0 && r3 == 1;
  for (std::size_t i = 0; i < kInts && ok; ++i) {
    int want = me * 1000 + static_cast<int>(i);
    if (i % 997 == 0) want += 7;
    if (i % 1009 == 0) want += 11;
    if (data[i] != want) ok = false;
  }
  env->rank_free(data);
  env->barrier();
  return reinterpret_cast<void*>(static_cast<std::intptr_t>(ok ? 1 : 0));
}

}  // namespace

TEST(Recovery, KillMidDeltaChainRestoresBothMutations) {
  const img::ProgramImage image = build_entry("chainkill", &chain_kill_main);
  mpi::RuntimeConfig cfg = cfg_pes(core::Method::PIEglobals, 2, 2);
  cfg.options.set("ft.policy", "epoch");
  cfg.options.set("ft.pe", "1");
  cfg.options.set("ft.epoch", "3");
  mpi::Runtime rt(image, cfg);
  rt.run();
  for (int r = 0; r < 2; ++r) {
    EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(r)), 1)
        << "rank " << r;
  }
  EXPECT_EQ(rt.recovery_count(), 1u);
  const util::Counters c = rt.ckpt_counters();
  EXPECT_GT(c.get("ckpt_images_delta"), 0u);
}

TEST(Recovery, TwoRankEpochKillWithAggregation) {
  // A couple of repetitions: the original hang was a scheduling race.
  for (int rep = 0; rep < 2; ++rep) {
    const img::ProgramImage image =
        build_entry("tworank", &two_rank_kill_main);
    mpi::RuntimeConfig cfg =
        cfg_pes(core::Method::PIEglobals, 2, 2, /*nodes=*/2);
    cfg.slot_bytes = std::size_t{64} << 20;
    cfg.options.set("ft.policy", "epoch");
    cfg.options.set("ft.pe", "1");
    cfg.options.set("ft.epoch", "2");
    cfg.options.set("mpi.timeout_s", "60");
    mpi::Runtime rt(image, cfg);
    rt.run();
    for (int r = 0; r < 2; ++r) {
      EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(r)), 1)
          << "rep " << rep << " rank " << r;
    }
    EXPECT_EQ(rt.recovery_count(), 1u) << "rep " << rep;
    EXPECT_EQ(rt.cluster().num_live_pes(), 1) << "rep " << rep;
  }
}
