// Unit tests for the program-image model: builder layout rules, GOT
// contents, materialization, serialization, instances, the emulated
// dynamic linker (dlopen/dlmopen/fs copies), and constructor logging.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "image/image.hpp"
#include "image/instance.hpp"
#include "image/loader.hpp"
#include "util/error.hpp"

using namespace apv;
using util::ApvError;

namespace {

void* fn_a(void*) { return nullptr; }
void* fn_b(void* x) { return x; }

img::ProgramImage simple_image() {
  img::ImageBuilder b("simple");
  b.add_global<int>("g_int", 41);
  b.add_global<double>("g_dbl", 2.5);
  b.add_global<int>("s_int", 7, {.is_static = true});
  b.add_global<int>("t_int", 9, {.is_tls = true});
  b.add_global<long>("c_long", 100, {.is_const = true});
  b.add_function("alpha", &fn_a);
  b.add_function("beta", &fn_b);
  return b.build();
}

}  // namespace

TEST(ImageBuilder, DuplicateNamesRejected) {
  img::ImageBuilder b("dup");
  b.add_global<int>("x", 0);
  EXPECT_THROW(b.add_global<int>("x", 1), ApvError);
  b.add_function("f", &fn_a);
  EXPECT_THROW(b.add_function("f", &fn_b), ApvError);
}

TEST(ImageBuilder, InvalidDeclarationsRejected) {
  img::ImageBuilder b("bad");
  EXPECT_THROW(b.add_var("zero", 0, 8, nullptr, 0), ApvError);
  EXPECT_THROW(b.add_var("badalign", 8, 3, nullptr, 0), ApvError);
  EXPECT_THROW(b.add_function("null", nullptr), ApvError);
  EXPECT_THROW(
      b.add_global<int>("ctls", 0, {.is_const = true, .is_tls = true}),
      ApvError);
}

TEST(ImageBuilder, LayoutRespectsAlignmentAndGot) {
  const img::ProgramImage image = simple_image();
  // Non-TLS variables live after the GOT; offsets honour alignment.
  for (const img::VarDecl& v : image.vars()) {
    if (v.is_tls) continue;
    EXPECT_GE(v.offset, image.got_bytes()) << v.name;
    EXPECT_EQ(v.offset % v.align, 0u) << v.name;
  }
  // GOT: all functions + non-static, non-TLS variables. Statics and TLS
  // variables deliberately have no slot (Swapglobals' blind spot).
  EXPECT_EQ(image.got().size(),
            2u /*functions*/ + 3u /*g_int, g_dbl, c_long*/);
  EXPECT_EQ(image.var(image.var_id("s_int")).got_index, img::kInvalidId);
  EXPECT_EQ(image.var(image.var_id("t_int")).got_index, img::kInvalidId);
  EXPECT_NE(image.var(image.var_id("g_int")).got_index, img::kInvalidId);
  // TLS image sized for the one tagged variable.
  EXPECT_GE(image.tls_size(), sizeof(int));
}

TEST(ImageBuilder, CodeSizeFloorCoversFunctionTable) {
  img::ImageBuilder b("tiny");
  b.add_global<int>("x", 0);
  b.add_function("f", &fn_a);
  const img::ProgramImage image = b.build();
  EXPECT_GE(image.code_size(),
            img::ProgramImage::kCodeHeaderSize +
                img::ProgramImage::kCodeEntrySize);
  EXPECT_EQ(image.code_size() % 4096, 0u);
}

TEST(ImageBuilder, LookupsWork) {
  const img::ProgramImage image = simple_image();
  EXPECT_EQ(image.var(image.var_id("g_dbl")).name, "g_dbl");
  EXPECT_EQ(image.func(image.func_id("beta")).native, &fn_b);
  EXPECT_THROW(image.var_id("nope"), ApvError);
  EXPECT_THROW(image.func_id("nope"), ApvError);
}

TEST(ImageInstance, MaterializationAppliesInitsAndRelocations) {
  const img::ProgramImage image = simple_image();
  auto inst = img::ImageInstance::allocate(image, img::InstanceOrigin::Primary);
  EXPECT_EQ(*static_cast<int*>(inst->var_addr(image.var_id("g_int"))), 41);
  EXPECT_EQ(*static_cast<double*>(inst->var_addr(image.var_id("g_dbl"))),
            2.5);
  EXPECT_EQ(*static_cast<long*>(inst->var_addr(image.var_id("c_long"))), 100);
  // GOT entries hold absolute addresses inside this instance.
  const img::VarDecl& g = image.var(image.var_id("g_int"));
  EXPECT_EQ(reinterpret_cast<void*>(inst->got()[g.got_index]),
            inst->var_addr(image.var_id("g_int")));
  const img::FuncDecl& f = image.func(image.func_id("alpha"));
  EXPECT_EQ(reinterpret_cast<std::byte*>(inst->got()[f.got_index]),
            inst->code_base() + f.code_offset);
}

TEST(ImageInstance, TlsVarAddrRefused) {
  const img::ProgramImage image = simple_image();
  auto inst = img::ImageInstance::allocate(image, img::InstanceOrigin::Primary);
  EXPECT_THROW(inst->var_addr(image.var_id("t_int")), ApvError);
}

TEST(ImageInstance, FuncAtAndNativeAt) {
  const img::ProgramImage image = simple_image();
  auto inst = img::ImageInstance::allocate(image, img::InstanceOrigin::Primary);
  const img::FuncId beta = image.func_id("beta");
  void* addr = inst->func_addr(beta);
  EXPECT_EQ(inst->func_at(addr), beta);
  EXPECT_EQ(inst->func_at(inst->code_base()), img::kInvalidId);  // header
  EXPECT_EQ(inst->native_at(beta), &fn_b);
  int probe = 0;
  EXPECT_EQ(inst->func_at(&probe), img::kInvalidId);
}

TEST(ImageInstance, SeparateInstancesHaveSeparateState) {
  const img::ProgramImage image = simple_image();
  auto a = img::ImageInstance::allocate(image, img::InstanceOrigin::Primary);
  auto b = img::ImageInstance::allocate(image,
                                        img::InstanceOrigin::DlmopenNamespace,
                                        1);
  *static_cast<int*>(a->var_addr(image.var_id("g_int"))) = 1111;
  EXPECT_EQ(*static_cast<int*>(b->var_addr(image.var_id("g_int"))), 41);
}

TEST(ImageSerialize, RoundTripPreservesLayout) {
  const img::ProgramImage image = simple_image();
  const auto bytes = image.serialize();
  const img::ProgramImage copy = img::deserialize_image(bytes, image);
  EXPECT_EQ(copy.name(), image.name());
  EXPECT_EQ(copy.code_size(), image.code_size());
  EXPECT_EQ(copy.data_size(), image.data_size());
  EXPECT_EQ(copy.tls_size(), image.tls_size());
  ASSERT_EQ(copy.vars().size(), image.vars().size());
  for (std::size_t i = 0; i < copy.vars().size(); ++i) {
    EXPECT_EQ(copy.vars()[i].name, image.vars()[i].name);
    EXPECT_EQ(copy.vars()[i].offset, image.vars()[i].offset);
    EXPECT_EQ(copy.vars()[i].is_static, image.vars()[i].is_static);
  }
  // Natives re-resolved from the hint image.
  EXPECT_EQ(copy.func(copy.func_id("beta")).native, &fn_b);
}

TEST(ImageSerialize, WrongProgramRejected) {
  const img::ProgramImage image = simple_image();
  img::ImageBuilder other_b("other");
  other_b.add_global<int>("x", 0);
  other_b.add_function("f", &fn_a);
  const img::ProgramImage other = other_b.build();
  EXPECT_THROW(img::deserialize_image(image.serialize(), other), ApvError);
  std::vector<std::byte> garbage(64, std::byte{0x5A});
  EXPECT_THROW(img::deserialize_image(garbage, image), ApvError);
}

// ---------------------------------------------------------------------------
// Loader

TEST(Loader, PrimaryIsLoadedOnce) {
  const img::ProgramImage image = simple_image();
  img::Loader loader;
  EXPECT_FALSE(loader.primary_loaded(image));
  img::ImageInstance& a = loader.load_primary(image);
  img::ImageInstance& b = loader.load_primary(image);
  EXPECT_EQ(&a, &b);
  EXPECT_TRUE(loader.primary_loaded(image));
  EXPECT_EQ(loader.registry().primary_of(image), &a);
}

TEST(Loader, DlmopenNamespaceCapEnforced) {
  const img::ProgramImage image = simple_image();
  img::Loader loader;
  for (int i = 0; i < img::Loader::kGlibcNamespaceCap; ++i) {
    img::ImageInstance& inst = loader.dlmopen_clone(image);
    EXPECT_EQ(inst.namespace_index(), i + 1);
  }
  try {
    loader.dlmopen_clone(image);
    FAIL() << "namespace cap not enforced";
  } catch (const ApvError& e) {
    EXPECT_EQ(e.code(), util::ErrorCode::LimitExceeded);
  }
}

TEST(Loader, PatchedGlibcLiftsCap) {
  const img::ProgramImage image = simple_image();
  util::Options opts;
  opts.set_bool("loader.patched_glibc", true);
  img::Loader loader(opts);
  for (int i = 0; i < img::Loader::kGlibcNamespaceCap + 4; ++i) {
    EXPECT_NO_THROW(loader.dlmopen_clone(image));
  }
}

TEST(Loader, DlmopenRequiresPie) {
  img::ImageBuilder b("nonpie");
  b.add_global<int>("x", 0);
  b.add_function("f", &fn_a);
  b.set_pie(false);
  const img::ProgramImage image = b.build();
  img::Loader loader;
  EXPECT_THROW(loader.dlmopen_clone(image), ApvError);
  EXPECT_THROW(loader.fs_clone(image, 0), ApvError);
}

TEST(Loader, FsCloneWritesARealFileAndLoadsIt) {
  const img::ProgramImage image = simple_image();
  util::Options opts;
  opts.set("fs.dir", "/tmp/apv_fs_test");
  opts.set_int("fs.latency_us", 0);
  img::Loader loader(opts);
  img::ImageInstance& inst = loader.fs_clone(image, 3);
  EXPECT_EQ(inst.origin(), img::InstanceOrigin::FsCopy);
  EXPECT_EQ(*static_cast<int*>(inst.var_addr(
                inst.image().var_id("g_int"))),
            41);
  std::FILE* f = std::fopen("/tmp/apv_fs_test/simple.rank3.bin", "rb");
  ASSERT_NE(f, nullptr) << "per-rank binary copy missing from shared fs";
  std::fclose(f);
}

TEST(Loader, FsCloneRefusesSharedDeps) {
  img::ImageBuilder b("withdeps");
  b.add_global<int>("x", 0);
  b.add_function("f", &fn_a);
  b.add_shared_dep("libhydro.so.2");
  const img::ProgramImage image = b.build();
  img::Loader loader;
  try {
    loader.fs_clone(image, 0);
    FAIL() << "shared deps not refused";
  } catch (const ApvError& e) {
    EXPECT_EQ(e.code(), util::ErrorCode::NotSupported);
  }
}

TEST(Loader, IteratePhdrReportsLoadsInOrder) {
  const img::ProgramImage image = simple_image();
  img::Loader loader;
  EXPECT_TRUE(loader.iterate_phdr().empty());
  img::ImageInstance& prim = loader.load_primary(image);
  img::ImageInstance& ns1 = loader.dlmopen_clone(image);
  const auto phdrs = loader.iterate_phdr();
  ASSERT_EQ(phdrs.size(), 2u);
  EXPECT_EQ(phdrs[0].instance, &prim);
  EXPECT_EQ(phdrs[1].instance, &ns1);
  EXPECT_EQ(phdrs[0].code_size, image.code_size());
  EXPECT_EQ(phdrs[0].data_size, image.data_size());
}

TEST(Registry, FindByAddressAndRemoval) {
  const img::ProgramImage image = simple_image();
  img::Loader loader;
  img::ImageInstance& prim = loader.load_primary(image);
  img::InstanceRegistry& reg = loader.registry();
  EXPECT_EQ(reg.find(prim.code_base() + 10), &prim);
  EXPECT_EQ(reg.find(prim.data_base() + 10), &prim);
  EXPECT_EQ(reg.find_code(prim.data_base()), nullptr);
  int local = 0;
  EXPECT_EQ(reg.find(&local), nullptr);
  reg.remove(&prim);
  EXPECT_EQ(reg.find(prim.code_base()), nullptr);
  reg.add(&prim);  // restore for loader teardown symmetry
}

// ---------------------------------------------------------------------------
// Constructors

namespace {
void counting_ctor(img::CtorContext& ctx) {
  void* block = ctx.ctor_malloc(256);
  ctx.set_ptr("block_ptr", block);
  ctx.write_heap_ptr(block, 0, ctx.func_ptr("f"));
  ctx.set<int>("ctor_ran", ctx.get<int>("ctor_ran") + 1);
}

img::ProgramImage ctor_image() {
  img::ImageBuilder b("ctorimg");
  b.add_global<void*>("block_ptr", nullptr);
  b.add_global<int>("ctor_ran", 0);
  b.add_function("f", &fn_a);
  b.add_constructor(&counting_ctor);
  return b.build();
}
}  // namespace

TEST(Ctors, RunOncePerInstanceWithLogging) {
  const img::ProgramImage image = ctor_image();
  img::Loader loader;
  img::ImageInstance& prim = loader.load_primary(image);
  EXPECT_EQ(*static_cast<int*>(prim.var_addr(image.var_id("ctor_ran"))), 1);
  ASSERT_EQ(prim.ctor_allocs().size(), 1u);
  EXPECT_EQ(prim.ctor_allocs()[0].size, 256u);
  // Pointer slots: one data-segment store, one heap store.
  ASSERT_EQ(prim.ptr_slots().size(), 2u);
  EXPECT_EQ(prim.ptr_slots()[0].where, img::PtrSlot::Where::Data);
  EXPECT_EQ(prim.ptr_slots()[1].where, img::PtrSlot::Where::Heap);
  // dlmopen clones run their own constructor against their own state.
  img::ImageInstance& ns = loader.dlmopen_clone(image);
  EXPECT_EQ(*static_cast<int*>(ns.var_addr(image.var_id("ctor_ran"))), 1);
  EXPECT_NE(prim.ctor_allocs()[0].ptr, ns.ctor_allocs()[0].ptr);
  // The stored function pointer targets each instance's own code.
  void* prim_fn =
      *static_cast<void**>(prim.ctor_allocs()[0].ptr);
  void* ns_fn = *static_cast<void**>(ns.ctor_allocs()[0].ptr);
  EXPECT_TRUE(prim.contains_code(prim_fn));
  EXPECT_TRUE(ns.contains_code(ns_fn));
  EXPECT_NE(prim_fn, ns_fn);
}

TEST(Ctors, WriteHeapPtrValidatesTarget) {
  const img::ProgramImage image = ctor_image();
  auto inst = img::ImageInstance::allocate(image, img::InstanceOrigin::Primary);
  img::CtorContext ctx(*inst);
  void* block = ctx.ctor_malloc(64);
  EXPECT_THROW(ctx.write_heap_ptr(block, 60, nullptr), ApvError);  // OOB
  int other;
  EXPECT_THROW(ctx.write_heap_ptr(&other, 0, nullptr), ApvError);  // foreign
}
