// Unit and property tests for the Isomalloc substrate: the VA arena, the
// in-slot heap (randomized alloc/free against a shadow model with full
// structural validation), and slot pack/unpack.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <vector>

#include "isomalloc/arena.hpp"
#include "isomalloc/dirty_tracker.hpp"
#include "isomalloc/pack.hpp"
#include "isomalloc/slot_heap.hpp"
#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

using namespace apv;
using util::ApvError;

namespace {
iso::IsoArena::Config small_arena() {
  return {.slot_size = std::size_t{1} << 20, .max_slots = 8};
}
}  // namespace

TEST(Arena, AcquireReleaseCycle) {
  iso::IsoArena arena(small_arena());
  EXPECT_EQ(arena.slots_in_use(), 0u);
  const iso::SlotId a = arena.acquire_slot();
  const iso::SlotId b = arena.acquire_slot();
  EXPECT_NE(a, b);
  EXPECT_EQ(arena.slots_in_use(), 2u);
  arena.release_slot(a);
  EXPECT_EQ(arena.slots_in_use(), 1u);
  const iso::SlotId c = arena.acquire_slot();
  EXPECT_EQ(c, a);  // slots recycle lowest-first
  arena.release_slot(b);
  arena.release_slot(c);
}

TEST(Arena, SlotsAreDisjointAndWritable) {
  iso::IsoArena arena(small_arena());
  const iso::SlotId a = arena.acquire_slot();
  const iso::SlotId b = arena.acquire_slot();
  auto* pa = static_cast<char*>(arena.slot_base(a));
  auto* pb = static_cast<char*>(arena.slot_base(b));
  EXPECT_EQ(pa + arena.slot_size(), pb);
  std::memset(pa, 0x11, arena.slot_size());
  std::memset(pb, 0x22, arena.slot_size());
  EXPECT_EQ(static_cast<unsigned char>(pa[arena.slot_size() - 1]), 0x11u);
  EXPECT_EQ(static_cast<unsigned char>(pb[0]), 0x22u);
}

TEST(Arena, ContainsAndSlotOf) {
  iso::IsoArena arena(small_arena());
  const iso::SlotId a = arena.acquire_slot();
  char* p = static_cast<char*>(arena.slot_base(a));
  EXPECT_TRUE(arena.contains(a, p));
  EXPECT_TRUE(arena.contains(a, p + arena.slot_size() - 1));
  EXPECT_FALSE(arena.contains(a, p + arena.slot_size()));
  EXPECT_EQ(arena.slot_of(p + 100), a);
  int on_stack;
  EXPECT_EQ(arena.slot_of(&on_stack), iso::kInvalidSlot);
}

TEST(Arena, ExhaustionThrows) {
  iso::IsoArena arena({.slot_size = 64 << 10, .max_slots = 2});
  arena.acquire_slot();
  arena.acquire_slot();
  EXPECT_THROW(arena.acquire_slot(), ApvError);
}

TEST(Arena, BadConfigRejected) {
  EXPECT_THROW(iso::IsoArena({.slot_size = 1024, .max_slots = 4}), ApvError);
  EXPECT_THROW(iso::IsoArena({.slot_size = 1 << 20, .max_slots = 0}),
               ApvError);
}

TEST(Arena, DoubleReleaseThrows) {
  iso::IsoArena arena(small_arena());
  const iso::SlotId a = arena.acquire_slot();
  arena.release_slot(a);
  EXPECT_THROW(arena.release_slot(a), ApvError);
}

// ---------------------------------------------------------------------------
// SlotHeap

class SlotHeapTest : public ::testing::Test {
 protected:
  SlotHeapTest() : arena_(small_arena()) {
    slot_ = arena_.acquire_slot();
    heap_ = iso::SlotHeap::format(arena_.slot_base(slot_),
                                  arena_.slot_size());
  }
  iso::IsoArena arena_;
  iso::SlotId slot_;
  iso::SlotHeap* heap_;
};

TEST_F(SlotHeapTest, FormatProducesValidEmptyHeap) {
  EXPECT_TRUE(heap_->check_integrity());
  EXPECT_EQ(heap_->bytes_in_use(), 0u);
  EXPECT_EQ(heap_->block_count(), 0u);
  EXPECT_GT(heap_->capacity(), arena_.slot_size() - 4096);
}

TEST_F(SlotHeapTest, AtValidatesMagic) {
  EXPECT_EQ(iso::SlotHeap::at(arena_.slot_base(slot_)), heap_);
  std::vector<char> junk(8192, 0x5A);
  EXPECT_THROW(iso::SlotHeap::at(junk.data()), ApvError);
}

TEST_F(SlotHeapTest, AllocationsAreDisjointAndAligned) {
  void* a = heap_->alloc(100);
  void* b = heap_->alloc(200);
  void* c = heap_->alloc(1);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  for (void* p : {a, b, c})
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % 16, 0u);
  std::memset(a, 1, 100);
  std::memset(b, 2, 200);
  std::memset(c, 3, 1);
  EXPECT_EQ(static_cast<char*>(a)[99], 1);
  EXPECT_EQ(static_cast<char*>(b)[0], 2);
  EXPECT_TRUE(heap_->check_integrity());
}

TEST_F(SlotHeapTest, LargeAlignmentHonoured) {
  for (std::size_t align : {32u, 64u, 256u, 4096u}) {
    void* p = heap_->alloc(64, align);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u) << align;
    EXPECT_TRUE(heap_->check_integrity());
    heap_->free(p);
  }
  EXPECT_EQ(heap_->bytes_in_use(), 0u);
}

TEST_F(SlotHeapTest, BadAlignmentRejected) {
  EXPECT_THROW(heap_->alloc(8, 24), ApvError);    // not a power of two
  EXPECT_THROW(heap_->alloc(8, 8192), ApvError);  // beyond the cap
}

TEST_F(SlotHeapTest, ExhaustionThrowsAndTryAllocReturnsNull) {
  EXPECT_EQ(heap_->try_alloc(arena_.slot_size() * 2), nullptr);
  EXPECT_THROW(heap_->alloc(arena_.slot_size() * 2), ApvError);
  // The heap remains usable afterwards.
  void* p = heap_->alloc(64);
  EXPECT_NE(p, nullptr);
  heap_->free(p);
}

TEST_F(SlotHeapTest, FreeCoalescesToFullCapacity) {
  std::vector<void*> ps;
  for (int i = 0; i < 64; ++i) ps.push_back(heap_->alloc(1000));
  // Free in a scrambled order to exercise both coalesce directions.
  for (int i = 0; i < 64; i += 2) heap_->free(ps[i]);
  for (int i = 1; i < 64; i += 2) heap_->free(ps[i]);
  EXPECT_TRUE(heap_->check_integrity());
  EXPECT_EQ(heap_->bytes_in_use(), 0u);
  // A single allocation of nearly full capacity must now succeed again.
  void* big = heap_->try_alloc(heap_->capacity() - 256);
  EXPECT_NE(big, nullptr);
}

TEST_F(SlotHeapTest, DoubleFreeDetected) {
  void* p = heap_->alloc(64);
  heap_->free(p);
  EXPECT_THROW(heap_->free(p), ApvError);
}

TEST_F(SlotHeapTest, HighWaterGrowsMonotonically) {
  const std::size_t w0 = heap_->high_water();
  void* a = heap_->alloc(10000);
  const std::size_t w1 = heap_->high_water();
  EXPECT_GT(w1, w0);
  heap_->free(a);
  EXPECT_EQ(heap_->high_water(), w1);  // never shrinks
}

TEST_F(SlotHeapTest, ForEachAllocationVisitsLiveBlocks) {
  void* a = heap_->alloc(100);
  void* b = heap_->alloc(200);
  heap_->free(a);
  int count = 0;
  std::size_t seen_bytes = 0;
  heap_->for_each_allocation([&](void* p, std::size_t size) {
    ++count;
    seen_bytes += size;
    EXPECT_TRUE(arena_.contains(slot_, p));
  });
  EXPECT_EQ(count, 1);
  EXPECT_GE(seen_bytes, 200u);
  heap_->free(b);
}

// Randomized differential test against a shadow model. Each live block is
// filled with a seed-derived pattern and re-verified before free, so any
// overlap or metadata corruption shows up as a pattern mismatch; heap
// structural invariants are validated throughout.
class SlotHeapFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SlotHeapFuzz, RandomAllocFreeKeepsIntegrity) {
  iso::IsoArena arena({.slot_size = std::size_t{2} << 20, .max_slots = 2});
  const iso::SlotId slot = arena.acquire_slot();
  iso::SlotHeap* heap =
      iso::SlotHeap::format(arena.slot_base(slot), arena.slot_size());
  util::SplitMix64 rng(GetParam());

  struct Shadow {
    std::size_t size;
    unsigned char pattern;
  };
  std::map<void*, Shadow> live;
  for (int step = 0; step < 3000; ++step) {
    const bool do_alloc = live.empty() || rng.next_below(100) < 60;
    if (do_alloc) {
      const std::size_t size = 1 + rng.next_below(3000);
      const std::size_t align = std::size_t{16}
                                << rng.next_below(4);  // 16..128
      void* p = heap->try_alloc(size, align);
      if (p == nullptr) continue;  // full is fine
      ASSERT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u);
      const auto pattern =
          static_cast<unsigned char>(rng.next() & 0xff);
      std::memset(p, pattern, size);
      ASSERT_EQ(live.count(p), 0u);
      live[p] = {size, pattern};
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.next_below(live.size())));
      const auto* bytes = static_cast<unsigned char*>(it->first);
      for (std::size_t i = 0; i < it->second.size; ++i) {
        ASSERT_EQ(bytes[i], it->second.pattern) << "corruption at " << i;
      }
      heap->free(it->first);
      live.erase(it);
    }
    if (step % 250 == 0) ASSERT_TRUE(heap->check_integrity());
  }
  ASSERT_TRUE(heap->check_integrity());
  for (auto& [p, shadow] : live) {
    const auto* bytes = static_cast<unsigned char*>(p);
    for (std::size_t i = 0; i < shadow.size; ++i)
      ASSERT_EQ(bytes[i], shadow.pattern);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlotHeapFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 42));

// ---------------------------------------------------------------------------
// Pack / unpack

TEST(Pack, RoundTripPreservesHeapBytes) {
  iso::IsoArena arena(small_arena());
  const iso::SlotId slot = arena.acquire_slot();
  iso::SlotHeap* heap =
      iso::SlotHeap::format(arena.slot_base(slot), arena.slot_size());
  char* a = static_cast<char*>(heap->alloc(5000));
  std::memset(a, 0x42, 5000);
  char* b = static_cast<char*>(heap->alloc(100));
  std::memcpy(b, "payload", 8);

  for (iso::PackMode mode : {iso::PackMode::Touched, iso::PackMode::FullSlot}) {
    util::ByteBuffer buf;
    iso::pack_slot(arena, slot, mode, buf);
    buf.rewind();
    iso::unpack_slot(arena, slot, buf);
    EXPECT_TRUE(iso::SlotHeap::at(arena.slot_base(slot))->check_integrity());
    EXPECT_EQ(a[4999], 0x42) << iso::pack_mode_name(mode);
    EXPECT_STREQ(b, "payload");
  }
}

TEST(Pack, TouchedIsSmallerThanFull) {
  iso::IsoArena arena(small_arena());
  const iso::SlotId slot = arena.acquire_slot();
  iso::SlotHeap* heap =
      iso::SlotHeap::format(arena.slot_base(slot), arena.slot_size());
  heap->alloc(1000);
  EXPECT_LT(iso::packed_payload_size(arena, slot, iso::PackMode::Touched),
            iso::packed_payload_size(arena, slot, iso::PackMode::FullSlot));
  EXPECT_EQ(iso::packed_payload_size(arena, slot, iso::PackMode::FullSlot),
            arena.slot_size());
}

TEST(Pack, UnpackPoisonsBeyondCarriedPrefix) {
  iso::IsoArena arena(small_arena());
  const iso::SlotId slot = arena.acquire_slot();
  iso::SlotHeap* heap =
      iso::SlotHeap::format(arena.slot_base(slot), arena.slot_size());
  heap->alloc(256);
  util::ByteBuffer buf;
  iso::pack_slot(arena, slot, iso::PackMode::Touched, buf);
  // Scribble past the high-water mark, then unpack: the scribble must be
  // overwritten with the pack-poison byte (a real migration would never
  // have carried it). The raw helpers bypass ASan: that region is free
  // heap, quarantined under -DAPV_SANITIZE=address, and the scribble is
  // deliberate test machinery, not a rank access.
  char* past = static_cast<char*>(arena.slot_base(slot)) +
               heap->high_water() + 64;
  const char scribble = 77;
  util::raw_memcpy(past, &scribble, 1);
  buf.rewind();
  iso::unpack_slot(arena, slot, buf);
  unsigned char got = 0;
  util::raw_memcpy(&got, past, 1);
  EXPECT_EQ(got, 0xDBu);
}

TEST(Pack, CorruptStreamRejected) {
  iso::IsoArena arena(small_arena());
  const iso::SlotId slot = arena.acquire_slot();
  iso::SlotHeap::format(arena.slot_base(slot), arena.slot_size());
  util::ByteBuffer buf;
  buf.put<std::uint64_t>(0x1234);  // wrong magic
  buf.put<std::uint64_t>(arena.slot_size());
  buf.put<std::uint64_t>(0);
  buf.rewind();
  EXPECT_THROW(iso::unpack_slot(arena, slot, buf), ApvError);
}

TEST(Pack, SlotSizeMismatchRejected) {
  iso::IsoArena small(small_arena());
  iso::IsoArena big({.slot_size = std::size_t{2} << 20, .max_slots = 2});
  const iso::SlotId s1 = small.acquire_slot();
  const iso::SlotId s2 = big.acquire_slot();
  iso::SlotHeap::format(small.slot_base(s1), small.slot_size());
  iso::SlotHeap::format(big.slot_base(s2), big.slot_size());
  util::ByteBuffer buf;
  iso::pack_slot(small, s1, iso::PackMode::Touched, buf);
  buf.rewind();
  EXPECT_THROW(iso::unpack_slot(big, s2, buf), ApvError);
}

TEST(Pack, CarrySlackCoversTrailingFreeBlockExactly) {
  // The pack prefix is high_water + kCarrySlackBytes: the slack must cover
  // the trailing free block's header and in-band free-list links, or an
  // unpacked heap would alloc through a torn free list.
  iso::IsoArena arena(small_arena());
  const iso::SlotId slot = arena.acquire_slot();
  iso::SlotHeap* heap =
      iso::SlotHeap::format(arena.slot_base(slot), arena.slot_size());
  heap->alloc(4096);
  EXPECT_EQ(iso::packed_payload_size(arena, slot, iso::PackMode::Touched),
            std::min(arena.slot_size(),
                     heap->high_water() + iso::SlotHeap::kCarrySlackBytes));
  util::ByteBuffer buf;
  iso::pack_slot(arena, slot, iso::PackMode::Touched, buf);
  buf.rewind();
  iso::unpack_slot(arena, slot, buf);
  iso::SlotHeap* back = iso::SlotHeap::at(arena.slot_base(slot));
  EXPECT_TRUE(back->check_integrity());
  // The free list survived the cut: carving from the trailing free block
  // still works after the round trip.
  EXPECT_NE(back->alloc(4096), nullptr);
  EXPECT_TRUE(back->check_integrity());
}

// ---------------------------------------------------------------------------
// Dirty tracking (mprotect write barrier)

TEST(DirtyTracker, WritesAreTrackedAtPageGranularity) {
  iso::IsoArena arena(small_arena());
  iso::DirtyTracker tracker(arena);
  const iso::SlotId slot = arena.acquire_slot();
  auto* base = static_cast<unsigned char*>(arena.slot_base(slot));
  const std::size_t page = iso::DirtyTracker::page_size();

  tracker.arm(slot);
  EXPECT_TRUE(tracker.armed(slot));
  EXPECT_EQ(tracker.dirty_page_count(slot, arena.slot_size()), 0u);

  const std::uint64_t faults0 = tracker.faults();
  base[0] = 1;                    // page 0: one fault
  base[3 * page + 17] = 2;        // page 3: one fault
  base[3 * page + page - 1] = 3;  // page 3 again: already unprotected
  EXPECT_EQ(tracker.faults(), faults0 + 2);
  EXPECT_EQ(tracker.dirty_page_count(slot, arena.slot_size()), 2u);

  const auto regions = tracker.dirty_regions(slot, arena.slot_size());
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_EQ(regions[0].offset, 0u);
  EXPECT_EQ(regions[0].len, page);
  EXPECT_EQ(regions[1].offset, 3 * page);
  EXPECT_EQ(regions[1].len, page);

  tracker.disarm(slot);
  EXPECT_FALSE(tracker.armed(slot));
  base[5 * page] = 4;  // disarmed: ordinary write, no tracking
  EXPECT_EQ(tracker.faults(), faults0 + 2);
}

TEST(DirtyTracker, AdjacentPagesCoalesceAndLimitClamps) {
  iso::IsoArena arena(small_arena());
  iso::DirtyTracker tracker(arena);
  const iso::SlotId slot = arena.acquire_slot();
  auto* base = static_cast<unsigned char*>(arena.slot_base(slot));
  const std::size_t page = iso::DirtyTracker::page_size();

  tracker.arm(slot);
  base[1 * page] = 1;
  base[2 * page] = 2;
  base[3 * page] = 3;
  const auto runs = tracker.dirty_regions(slot, arena.slot_size());
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].offset, page);
  EXPECT_EQ(runs[0].len, 3 * page);

  // A prefix limit mid-page clamps the final region and drops pages beyond.
  const auto clamped = tracker.dirty_regions(slot, 2 * page + page / 2);
  ASSERT_EQ(clamped.size(), 1u);
  EXPECT_EQ(clamped[0].offset, page);
  EXPECT_EQ(clamped[0].len, page + page / 2);
  EXPECT_EQ(tracker.dirty_page_count(slot, 2 * page + page / 2), 2u);
  tracker.disarm(slot);
}

TEST(DirtyTracker, RearmClearsBitmapAndPreDirtySkipsTheFault) {
  iso::IsoArena arena(small_arena());
  iso::DirtyTracker tracker(arena);
  const iso::SlotId slot = arena.acquire_slot();
  auto* base = static_cast<unsigned char*>(arena.slot_base(slot));
  const std::size_t page = iso::DirtyTracker::page_size();

  tracker.arm(slot);
  base[0] = 1;
  EXPECT_EQ(tracker.dirty_page_count(slot, arena.slot_size()), 1u);

  tracker.arm(slot);  // new epoch: bitmap resets, slot re-protects
  EXPECT_EQ(tracker.dirty_page_count(slot, arena.slot_size()), 0u);

  // Pre-dirtying marks and write-enables without a fault.
  const std::uint64_t faults0 = tracker.faults();
  const std::uint64_t pre0 = tracker.pre_dirtied();
  tracker.pre_dirty(base + 2 * page, page);
  EXPECT_EQ(tracker.pre_dirtied(), pre0 + 1);
  base[2 * page + 5] = 9;  // no fault: the page is already writable
  EXPECT_EQ(tracker.faults(), faults0);
  EXPECT_EQ(tracker.dirty_page_count(slot, arena.slot_size()), 1u);

  // Pre-dirty outside any armed slot is a no-op.
  int on_stack = 0;
  tracker.pre_dirty(&on_stack, sizeof on_stack);
  EXPECT_EQ(tracker.pre_dirtied(), pre0 + 1);
  tracker.disarm(slot);
}

TEST(DirtyTracker, AllocatorNotificationsPreDirtyHeapMetadata) {
  iso::IsoArena arena(small_arena());
  const iso::SlotId slot = arena.acquire_slot();
  iso::SlotHeap* heap =
      iso::SlotHeap::format(arena.slot_base(slot), arena.slot_size());
  heap->alloc(512);

  // The tracker's constructor installed the SlotHeap write-notify hook:
  // allocator metadata writes pre-dirty their pages instead of faulting.
  iso::DirtyTracker tracker(arena);
  tracker.arm(slot);
  const std::uint64_t pre0 = tracker.pre_dirtied();
  void* p = heap->alloc(512);
  EXPECT_NE(p, nullptr);
  EXPECT_GT(tracker.pre_dirtied(), pre0);
  EXPECT_GT(tracker.dirty_page_count(slot, arena.slot_size()), 0u);
  tracker.disarm(slot);
  EXPECT_TRUE(heap->check_integrity());
}

// ---------------------------------------------------------------------------
// Delta pack / unpack

namespace {

// Fills `buf[0, n)` with a deterministic per-test pattern.
void fill_pattern(unsigned char* buf, std::size_t n, unsigned seed) {
  for (std::size_t i = 0; i < n; ++i) {
    buf[i] = static_cast<unsigned char>(i * 31 + seed);
  }
}

}  // namespace

TEST(Pack, DeltaChainRestoresBitIdenticalBytes) {
  iso::IsoArena arena(small_arena());
  iso::DirtyTracker tracker(arena);
  const iso::SlotId slot = arena.acquire_slot();
  iso::SlotHeap* heap =
      iso::SlotHeap::format(arena.slot_base(slot), arena.slot_size());
  constexpr std::size_t kBytes = 64 << 10;
  auto* a = static_cast<unsigned char*>(heap->alloc(kBytes));
  fill_pattern(a, kBytes, 1);

  util::ByteBuffer base;
  iso::pack_slot(arena, slot, iso::PackMode::Touched, base);

  // New epoch: mutate a small subset of the allocation under the barrier.
  tracker.arm(slot);
  fill_pattern(a, 4096, 2);
  a[kBytes - 1] = 0x5A;
  const std::size_t prefix =
      iso::packed_payload_size(arena, slot, iso::PackMode::Touched);
  const auto regions = tracker.dirty_regions(slot, prefix);
  ASSERT_FALSE(regions.empty());
  util::ByteBuffer delta;
  iso::pack_slot_delta(arena, slot, regions, /*base_epoch=*/1, delta);
  tracker.disarm(slot);
  EXPECT_LT(delta.size(), base.size());

  std::uint64_t base_epoch = 0;
  EXPECT_TRUE(iso::packed_image_is_delta(util::ByteReader(delta),
                                         &base_epoch));
  EXPECT_EQ(base_epoch, 1u);
  EXPECT_FALSE(iso::packed_image_is_delta(util::ByteReader(base)));

  // Snapshot the live prefix, wreck the slot, then materialize the chain.
  // Raw helpers throughout: the prefix spans quarantined free-block
  // interiors, and the wreck-and-verify is test machinery, not rank code.
  std::vector<unsigned char> expect(prefix);
  util::raw_memcpy(expect.data(), arena.slot_base(slot), prefix);
  util::raw_memset(arena.slot_base(slot), 0xEE, arena.slot_size());
  base.rewind();
  iso::unpack_slot(arena, slot, base);
  delta.rewind();
  iso::unpack_slot(arena, slot, delta);

  std::vector<unsigned char> got(prefix);
  util::raw_memcpy(got.data(), arena.slot_base(slot), prefix);
  EXPECT_EQ(std::memcmp(expect.data(), got.data(), prefix), 0);
  EXPECT_TRUE(iso::SlotHeap::at(arena.slot_base(slot))->check_integrity());
  // Bytes the chain never carried are poison, not the wrecked 0xEE.
  const auto* past =
      static_cast<unsigned char*>(arena.slot_base(slot)) + prefix + 64;
  unsigned char past_byte = 0;
  util::raw_memcpy(&past_byte, past, 1);
  EXPECT_EQ(past_byte, 0xDBu);
}

TEST(Pack, FoldedDeltaMatchesDirectChainApplication) {
  iso::IsoArena arena(small_arena());
  iso::DirtyTracker tracker(arena);
  const iso::SlotId slot = arena.acquire_slot();
  iso::SlotHeap* heap =
      iso::SlotHeap::format(arena.slot_base(slot), arena.slot_size());
  constexpr std::size_t kBytes = 32 << 10;
  auto* a = static_cast<unsigned char*>(heap->alloc(kBytes));
  fill_pattern(a, kBytes, 3);

  util::ByteBuffer base;
  iso::pack_slot(arena, slot, iso::PackMode::Touched, base);
  tracker.arm(slot);
  fill_pattern(a + 8192, 2048, 4);
  const std::size_t prefix =
      iso::packed_payload_size(arena, slot, iso::PackMode::Touched);
  const auto regions = tracker.dirty_regions(slot, prefix);
  util::ByteBuffer delta;
  iso::pack_slot_delta(arena, slot, regions, /*base_epoch=*/7, delta);
  tracker.disarm(slot);

  util::ByteBuffer folded;
  iso::fold_delta_into_full(util::ByteReader(base), util::ByteReader(delta),
                            folded);
  EXPECT_FALSE(iso::packed_image_is_delta(util::ByteReader(folded)));

  // Apply the chain directly, snapshot the whole slot (raw: the snapshot
  // spans quarantined free heap, and the wrecks are test machinery)...
  util::raw_memset(arena.slot_base(slot), 0xEE, arena.slot_size());
  base.rewind();
  iso::unpack_slot(arena, slot, base);
  delta.rewind();
  iso::unpack_slot(arena, slot, delta);
  std::vector<unsigned char> direct(arena.slot_size());
  util::raw_memcpy(direct.data(), arena.slot_base(slot), arena.slot_size());

  // ...then unpack the folded image into a re-wrecked slot: every byte of
  // the slot must match, poison included.
  util::raw_memset(arena.slot_base(slot), 0xCC, arena.slot_size());
  folded.rewind();
  iso::unpack_slot(arena, slot, folded);
  std::vector<unsigned char> refolded(arena.slot_size());
  util::raw_memcpy(refolded.data(), arena.slot_base(slot), arena.slot_size());
  EXPECT_EQ(std::memcmp(direct.data(), refolded.data(), arena.slot_size()),
            0);
  EXPECT_TRUE(iso::SlotHeap::at(arena.slot_base(slot))->check_integrity());
}

TEST(Pack, DeltaModeRefusedByFullPackEntryPoints) {
  iso::IsoArena arena(small_arena());
  const iso::SlotId slot = arena.acquire_slot();
  iso::SlotHeap::format(arena.slot_base(slot), arena.slot_size());
  util::ByteBuffer buf;
  EXPECT_THROW(iso::pack_slot(arena, slot, iso::PackMode::Delta, buf),
               ApvError);
  EXPECT_THROW(iso::packed_payload_size(arena, slot, iso::PackMode::Delta),
               ApvError);
}

TEST(Pack, DeltaRegionBeyondSlotRejected) {
  iso::IsoArena arena(small_arena());
  const iso::SlotId slot = arena.acquire_slot();
  iso::SlotHeap::format(arena.slot_base(slot), arena.slot_size());
  util::ByteBuffer buf;
  const std::vector<iso::DirtyRegion> bogus = {
      {arena.slot_size() - 16, 4096}};
  EXPECT_THROW(iso::pack_slot_delta(arena, slot, bogus, 1, buf), ApvError);
}
