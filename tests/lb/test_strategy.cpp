// Load-balancing strategy tests: correctness properties every strategy
// must satisfy, plus strategy-specific behaviour (greedy balance quality,
// refine's migration frugality, rotate's exactness).

#include <gtest/gtest.h>

#include "lb/strategy.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

using namespace apv;

namespace {

lb::LbStats skewed_stats(int ranks, int pes, std::uint64_t seed) {
  util::SplitMix64 rng(seed);
  lb::LbStats s;
  s.num_pes = pes;
  for (int r = 0; r < ranks; ++r) {
    // Heavy-tailed loads: a few expensive ranks, many cheap ones.
    const double load =
        rng.next_below(8) == 0 ? rng.next_range(5.0, 10.0)
                               : rng.next_range(0.05, 0.5);
    s.rank_load.push_back(load);
    s.rank_pe.push_back(static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(pes))));
  }
  return s;
}

}  // namespace

class StrategyProperties
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint64_t>> {
};

TEST_P(StrategyProperties, AssignmentIsValidAndDeterministic) {
  const auto [name, seed] = GetParam();
  const lb::LbStats stats = skewed_stats(48, 6, seed);
  auto strategy = lb::make_strategy(name);
  const lb::Assignment a = strategy->assign(stats);
  const lb::Assignment b = strategy->assign(stats);
  ASSERT_EQ(a.size(), stats.rank_load.size());
  EXPECT_EQ(a, b) << "strategy must be deterministic";
  for (int pe : a) {
    EXPECT_GE(pe, 0);
    EXPECT_LT(pe, stats.num_pes);
  }
}

TEST_P(StrategyProperties, BalancersNeverWorsenImbalanceMuch) {
  const auto [name, seed] = GetParam();
  const std::string n = name;
  if (n == "rotate" || n == "rand") GTEST_SKIP() << "not a balancer";
  const lb::LbStats stats = skewed_stats(48, 6, seed);
  const double before = lb::assignment_imbalance(
      stats, lb::Assignment(stats.rank_pe.begin(), stats.rank_pe.end()));
  const double after =
      lb::assignment_imbalance(stats, lb::make_strategy(name)->assign(stats));
  EXPECT_LE(after, before + 1e-9) << name;
}

INSTANTIATE_TEST_SUITE_P(
    All, StrategyProperties,
    ::testing::Combine(::testing::Values("greedy", "greedyrefine", "rotate",
                                         "rand", "none"),
                       ::testing::Values(1u, 7u, 99u)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

TEST(GreedyLb, NearOptimalOnSkewedLoads) {
  for (std::uint64_t seed : {3u, 17u, 2025u}) {
    const lb::LbStats stats = skewed_stats(64, 8, seed);
    const double after = lb::assignment_imbalance(
        stats, lb::GreedyLb().assign(stats));
    EXPECT_LT(after, 1.35) << "seed " << seed;
  }
}

TEST(GreedyRefineLb, GoodBalanceWithFewMigrations) {
  for (std::uint64_t seed : {3u, 17u, 2025u}) {
    const lb::LbStats stats = skewed_stats(64, 8, seed);
    const lb::Assignment greedy = lb::GreedyLb().assign(stats);
    const lb::Assignment refine = lb::GreedyRefineLb().assign(stats);
    EXPECT_LE(lb::migration_count(stats, refine),
              lb::migration_count(stats, greedy))
        << "seed " << seed;
    EXPECT_LT(lb::assignment_imbalance(stats, refine), 1.6) << seed;
  }
}

TEST(GreedyRefineLb, AlreadyBalancedMeansNoMigrations) {
  lb::LbStats stats;
  stats.num_pes = 4;
  for (int r = 0; r < 16; ++r) {
    stats.rank_load.push_back(1.0);
    stats.rank_pe.push_back(r % 4);
  }
  EXPECT_EQ(lb::migration_count(stats,
                                lb::GreedyRefineLb().assign(stats)),
            0);
}

TEST(RotateLb, MovesEveryRankByExactlyOnePe) {
  const lb::LbStats stats = skewed_stats(20, 5, 11);
  const lb::Assignment out = lb::RotateLb().assign(stats);
  for (int r = 0; r < stats.num_ranks(); ++r) {
    EXPECT_EQ(out[static_cast<std::size_t>(r)],
              (stats.rank_pe[static_cast<std::size_t>(r)] + 1) % 5);
  }
}

TEST(NullLb, IdentityPlacement) {
  const lb::LbStats stats = skewed_stats(20, 5, 11);
  const lb::Assignment out = lb::NullLb().assign(stats);
  EXPECT_EQ(out, lb::Assignment(stats.rank_pe.begin(), stats.rank_pe.end()));
}

TEST(StrategyFactory, UnknownNameThrows) {
  EXPECT_THROW(lb::make_strategy("quantumlb"), util::ApvError);
  EXPECT_EQ(std::string(lb::make_strategy("greedyrefinelb")->name()),
            "greedyrefine");
}

TEST(Strategy, InvalidStatsRejected) {
  lb::LbStats stats;
  stats.num_pes = 2;
  stats.rank_load = {1.0, 2.0};
  stats.rank_pe = {0, 7};  // PE out of range
  EXPECT_THROW(lb::GreedyLb().assign(stats), util::ApvError);
  stats.rank_pe = {0};  // size mismatch
  EXPECT_THROW(lb::GreedyLb().assign(stats), util::ApvError);
}

TEST(Helpers, ImbalanceAndMigrationCount) {
  lb::LbStats stats;
  stats.num_pes = 2;
  stats.rank_load = {3.0, 1.0};
  stats.rank_pe = {0, 0};
  EXPECT_NEAR(lb::assignment_imbalance(
                  stats, lb::Assignment(stats.rank_pe.begin(),
                                        stats.rank_pe.end())),
              2.0, 1e-12);
  const lb::Assignment moved = {0, 1};
  EXPECT_NEAR(lb::assignment_imbalance(stats, moved), 1.5, 1e-12);
  EXPECT_EQ(lb::migration_count(stats, moved), 1);
  EXPECT_EQ(stats.pe_loads()[0], 4.0);
}

TEST(StealVictim, DeepestBacklogWins) {
  EXPECT_EQ(lb::pick_steal_victim({0, 3, 7, 2}, 0), 2);
  EXPECT_EQ(lb::pick_steal_victim({9, 3, 7, 2}, 3), 0);
}

TEST(StealVictim, TiesBreakTowardLowestPe) {
  EXPECT_EQ(lb::pick_steal_victim({0, 5, 5, 5}, 0), 1);
}

TEST(StealVictim, SelfNeverPicked) {
  // PE 2 has the deepest queue but is asking for itself.
  EXPECT_EQ(lb::pick_steal_victim({0, 1, 9}, 2), 1);
}

TEST(StealVictim, MinReadyFilters) {
  // Stealing a victim's only runnable rank just relocates the imbalance.
  EXPECT_EQ(lb::pick_steal_victim({0, 1, 1}, 0, 2), -1);
  EXPECT_EQ(lb::pick_steal_victim({0, 1, 2}, 0, 2), 2);
}

TEST(StealVictim, NoQualifierReturnsMinusOne) {
  EXPECT_EQ(lb::pick_steal_victim({0, 0, 0}, 1), -1);
  EXPECT_EQ(lb::pick_steal_victim({}, 0), -1);
  EXPECT_EQ(lb::pick_steal_victim({4}, 0), -1);  // alone in the cluster
}

// --- latency-aware overload: rank by depth x recent service time ----------

TEST(StealVictimLatency, LongestEstimatedWaitWins) {
  // PE 2 is deepest, but its ULTs are quick (7 x 100ns = 700ns of work);
  // PE 3's three hogs are the backlog worth relieving (3 x 1000 = 3000ns).
  EXPECT_EQ(lb::pick_steal_victim({0, 3, 7, 3}, {0, 100, 100, 1000}, 0), 3);
  // With uniform service times the ranking degenerates to depth.
  EXPECT_EQ(lb::pick_steal_victim({0, 3, 7, 3}, {500, 500, 500, 500}, 0), 2);
}

TEST(StealVictimLatency, UnmeasuredPesFallBackToDepth) {
  // All-zero service estimates (nothing has run yet): pure depth ranking,
  // identical to the depth-only overload.
  EXPECT_EQ(lb::pick_steal_victim({0, 3, 7, 2}, {0, 0, 0, 0}, 0), 2);
  // A measured slow PE outranks an unmeasured deeper one: 2 x 5000ns beats
  // a neutral 7 x 1ns.
  EXPECT_EQ(lb::pick_steal_victim({0, 2, 7, 0}, {0, 5000, 0, 0}, 0), 1);
  // A short service vector is padded with the neutral estimate, not read
  // out of bounds.
  EXPECT_EQ(lb::pick_steal_victim({0, 3, 7, 2}, {0, 9000}, 0), 1);
}

TEST(StealVictimLatency, EqualWaitPrefersDeeperQueue) {
  // 6 x 100 == 2 x 300: the deeper queue gives the victim more slack to
  // still have something stealable when the request lands.
  EXPECT_EQ(lb::pick_steal_victim({0, 2, 6}, {0, 300, 100}, 0), 2);
}

TEST(StealVictimLatency, SelfAndMinReadyStillApply) {
  EXPECT_EQ(lb::pick_steal_victim({0, 1, 9}, {0, 100, 100}, 2), 1);
  EXPECT_EQ(lb::pick_steal_victim({0, 1, 1}, {0, 800, 900}, 0, 2), -1);
  EXPECT_EQ(lb::pick_steal_victim(std::vector<std::size_t>{},
                                  std::vector<std::uint64_t>{}, 0),
            -1);
}

// --- batch quota: how many ranks one steal may take ------------------------

TEST(StealBatchQuota, EmptyQueueGrantsNothing) {
  EXPECT_EQ(lb::steal_batch_quota(0, 1), 0);
  EXPECT_EQ(lb::steal_batch_quota(0, 8), 0);
}

TEST(StealBatchQuota, CappedAtHalfTheBacklogRoundedUp) {
  // A greedy ask never strip-mines the victim: 8 queued -> at most 4 go.
  EXPECT_EQ(lb::steal_batch_quota(8, 8), 4);
  EXPECT_EQ(lb::steal_batch_quota(8, 100), 4);
  // Rounded up, so odd backlogs still yield work: 5 -> 3, 1 -> 1.
  EXPECT_EQ(lb::steal_batch_quota(5, 8), 3);
  EXPECT_EQ(lb::steal_batch_quota(1, 8), 1);
}

TEST(StealBatchQuota, ModestAsksGrantedInFull) {
  EXPECT_EQ(lb::steal_batch_quota(8, 1), 1);
  EXPECT_EQ(lb::steal_batch_quota(8, 3), 3);
  EXPECT_EQ(lb::steal_batch_quota(100, 4), 4);
}

TEST(StealBatchQuota, PreProtocolZeroActsAsSingleSteal) {
  // Requests from builds predating the batch field carry 0 in the slot;
  // they keep the classic one-rank-per-steal behaviour.
  EXPECT_EQ(lb::steal_batch_quota(8, 0), 1);
  EXPECT_EQ(lb::steal_batch_quota(8, -5), 1);
  EXPECT_EQ(lb::steal_batch_quota(1, 0), 1);
}
