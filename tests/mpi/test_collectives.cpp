// Collective-operation correctness: every collective against a sequential
// reference, across communicator sizes, datatypes, ops, and placements —
// plus user-defined operators with PIEglobals function-pointer translation
// and the paper's empty-PE reduction error.

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "image/image.hpp"
#include "mpi/runtime.hpp"
#include "util/error.hpp"

using namespace apv;
using mpi::Datatype;
using mpi::Env;
using mpi::Op;
using mpi::OpKind;

namespace {

using EntryFn = void* (*)(void*);

struct JobShape {
  int vps;
  int nodes;
  int ppn;
};

std::vector<std::intptr_t> run_job(EntryFn entry, const JobShape& shape,
                                   core::Method method =
                                       core::Method::PIEglobals,
                                   img::CtorFn ctor = nullptr) {
  img::ImageBuilder b("colljob");
  b.add_global<int>("unused", 0);
  b.add_function("mpi_main", entry);
  // Affine-map composition: pairs (p, q) stand for x -> p*x + q, and
  // combine(a, b) = a after b = (a.p*b.p, a.p*b.q + a.q). Associative (as
  // MPI requires of every reduction op) but non-commutative, so it detects
  // any reordering of operands while tolerating re-bracketing (binomial /
  // hierarchical folds).
  b.add_function("user_combine", reinterpret_cast<img::NativeFn>(
                                     +[](const void* in, void* inout,
                                         int len, Datatype) {
                                       const int* a =
                                           static_cast<const int*>(in);
                                       int* b2 = static_cast<int*>(inout);
                                       for (int i = 0; i + 1 < len; i += 2) {
                                         b2[i + 1] =
                                             a[i] * b2[i + 1] + a[i + 1];
                                         b2[i] = a[i] * b2[i];
                                       }
                                     }));
  if (ctor != nullptr) b.add_constructor(ctor);
  const img::ProgramImage image = b.build();
  mpi::RuntimeConfig cfg;
  cfg.nodes = shape.nodes;
  cfg.pes_per_node = shape.ppn;
  cfg.vps = shape.vps;
  cfg.method = method;
  cfg.slot_bytes = std::size_t{8} << 20;
  mpi::Runtime rt(image, cfg);
  rt.run();
  std::vector<std::intptr_t> out;
  for (int r = 0; r < shape.vps; ++r)
    out.push_back(reinterpret_cast<std::intptr_t>(rt.rank_return(r)));
  return out;
}

#define ENV() auto* env = static_cast<Env*>(arg)

// --- one entry per collective, each self-checking and returning 1 on pass

void* bcast_main(void* arg) {
  ENV();
  std::intptr_t ok = 1;
  for (int root = 0; root < env->size(); ++root) {
    long payload[3] = {0, 0, 0};
    if (env->rank() == root) {
      payload[0] = 100 + root;
      payload[1] = 200 + root;
      payload[2] = 300 + root;
    }
    env->bcast(payload, 3, Datatype::Long, root);
    if (payload[0] != 100 + root || payload[2] != 300 + root) ok = 0;
  }
  return reinterpret_cast<void*>(ok);
}

void* reduce_main(void* arg) {
  ENV();
  const int me = env->rank();
  const int n = env->size();
  std::intptr_t ok = 1;
  // Sum of arrays at every root.
  for (int root = 0; root < n; ++root) {
    int mine[4] = {me, me * 2, me * 3, 1};
    int out[4] = {-1, -1, -1, -1};
    env->reduce(mine, out, 4, Datatype::Int, Op::builtin(OpKind::Sum), root);
    if (me == root) {
      const int s = n * (n - 1) / 2;
      if (out[0] != s || out[1] != 2 * s || out[2] != 3 * s || out[3] != n)
        ok = 0;
    }
  }
  // Max and Min with doubles.
  double dmine = 10.0 + me;
  double dout = 0;
  env->reduce(&dmine, &dout, 1, Datatype::Double,
              Op::builtin(OpKind::Max), 0);
  if (me == 0 && dout != 10.0 + (n - 1)) ok = 0;
  env->reduce(&dmine, &dout, 1, Datatype::Double,
              Op::builtin(OpKind::Min), 0);
  if (me == 0 && dout != 10.0) ok = 0;
  return reinterpret_cast<void*>(ok);
}

void* allreduce_main(void* arg) {
  ENV();
  const int me = env->rank();
  const int n = env->size();
  std::intptr_t ok = 1;
  long v = 1L << me;
  long all = 0;
  env->allreduce(&v, &all, 1, Datatype::Long, Op::builtin(OpKind::BitOr));
  if (all != (1L << n) - 1) ok = 0;
  unsigned prod_in = 2;
  unsigned prod = 0;
  env->allreduce(&prod_in, &prod, 1, Datatype::Unsigned,
                 Op::builtin(OpKind::Prod));
  if (prod != (1u << n)) ok = 0;
  return reinterpret_cast<void*>(ok);
}

void* scan_main(void* arg) {
  ENV();
  const int me = env->rank();
  int v = me + 1;
  int prefix = 0;
  env->scan(&v, &prefix, 1, Datatype::Int, Op::builtin(OpKind::Sum));
  // Inclusive prefix: 1 + 2 + ... + (me+1).
  const int expect = (me + 1) * (me + 2) / 2;
  return reinterpret_cast<void*>(
      static_cast<std::intptr_t>(prefix == expect));
}

void* gather_scatter_main(void* arg) {
  ENV();
  const int me = env->rank();
  const int n = env->size();
  std::intptr_t ok = 1;
  // Gather to each root.
  int mine = me * 11;
  std::vector<int> all(static_cast<std::size_t>(n), -1);
  env->gather(&mine, 1, Datatype::Int, all.data(), 1, Datatype::Int, 0);
  if (me == 0) {
    for (int i = 0; i < n; ++i)
      if (all[static_cast<std::size_t>(i)] != i * 11) ok = 0;
  }
  // Scatter back out.
  std::vector<int> src(static_cast<std::size_t>(n));
  if (me == 0) {
    for (int i = 0; i < n; ++i) src[static_cast<std::size_t>(i)] = 1000 + i;
  }
  int got = -1;
  env->scatter(src.data(), 1, Datatype::Int, &got, 1, Datatype::Int, 0);
  if (got != 1000 + me) ok = 0;
  // Allgather.
  std::vector<int> everyone(static_cast<std::size_t>(n), -1);
  env->allgather(&got, 1, Datatype::Int, everyone.data(), 1, Datatype::Int);
  for (int i = 0; i < n; ++i)
    if (everyone[static_cast<std::size_t>(i)] != 1000 + i) ok = 0;
  return reinterpret_cast<void*>(ok);
}

void* gatherv_main(void* arg) {
  ENV();
  const int me = env->rank();
  const int n = env->size();
  // Rank i contributes i+1 ints.
  std::vector<int> mine(static_cast<std::size_t>(me + 1), me);
  std::vector<int> counts, displs;
  int total = 0;
  for (int i = 0; i < n; ++i) {
    counts.push_back(i + 1);
    displs.push_back(total);
    total += i + 1;
  }
  std::vector<int> all(static_cast<std::size_t>(total), -1);
  env->gatherv(mine.data(), me + 1, Datatype::Int, all.data(), counts.data(),
               displs.data(), Datatype::Int, 0);
  std::intptr_t ok = 1;
  if (me == 0) {
    for (int i = 0; i < n; ++i) {
      for (int k = 0; k < counts[static_cast<std::size_t>(i)]; ++k) {
        if (all[static_cast<std::size_t>(displs[static_cast<std::size_t>(i)] +
                                         k)] != i)
          ok = 0;
      }
    }
  }
  // scatterv of the same shape.
  std::vector<int> back(static_cast<std::size_t>(me + 1), -1);
  env->scatterv(all.data(), counts.data(), displs.data(), Datatype::Int,
                back.data(), me + 1, Datatype::Int, 0);
  for (int k = 0; k <= me; ++k)
    if (back[static_cast<std::size_t>(k)] != me) ok = 0;
  return reinterpret_cast<void*>(ok);
}

void* alltoall_main(void* arg) {
  ENV();
  const int me = env->rank();
  const int n = env->size();
  std::vector<int> send(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    send[static_cast<std::size_t>(i)] = me * 100 + i;
  std::vector<int> recv(static_cast<std::size_t>(n), -1);
  env->alltoall(send.data(), 1, Datatype::Int, recv.data(), 1, Datatype::Int);
  std::intptr_t ok = 1;
  for (int i = 0; i < n; ++i)
    if (recv[static_cast<std::size_t>(i)] != i * 100 + me) ok = 0;
  return reinterpret_cast<void*>(ok);
}

void* maxloc_main(void* arg) {
  ENV();
  const int me = env->rank();
  const int n = env->size();
  mpi::DoubleInt mine{static_cast<double>((me * 7) % n), me};
  mpi::DoubleInt best{0, 0};
  env->allreduce(&mine, &best, 1, Datatype::DoubleInt,
                 Op::builtin(OpKind::MaxLoc));
  // Compute the expected winner sequentially.
  double best_v = -1;
  int best_i = -1;
  for (int i = 0; i < n; ++i) {
    const double v = (i * 7) % n;
    if (v > best_v) {
      best_v = v;
      best_i = i;
    }
  }
  return reinterpret_cast<void*>(static_cast<std::intptr_t>(
      best.value == best_v && best.index == best_i));
}

// Rank i contributes the affine map (p_i, q_i); the rank-ordered fold is
// the composition s_0 after s_1 after ... after s_{n-1}.
constexpr int affine_p(int i) { return i % 8 == 0 ? 2 : 1; }
constexpr int affine_q(int i) { return i + 1; }

// Sequential left fold of ranks [0, n) starting from the identity map.
void affine_expect(int n, int* ep, int* eq) {
  *ep = 1;
  *eq = 0;
  for (int i = 0; i < n; ++i) {
    *eq = *ep * affine_q(i) + *eq;
    *ep = *ep * affine_p(i);
  }
}

void* userop_main(void* arg) {
  ENV();
  const int me = env->rank();
  const int n = env->size();
  // Non-commutative (but associative) op: affine-map composition in rank
  // order.
  const Op op = env->op_create("user_combine", /*commutative=*/false);
  int v[2] = {affine_p(me), affine_q(me)};
  int out[2] = {-1, -1};
  env->reduce(v, out, 2, Datatype::Int, op, 0);
  if (me != 0) return reinterpret_cast<void*>(std::intptr_t{1});
  int ep = 0, eq = 0;
  affine_expect(n, &ep, &eq);
  return reinterpret_cast<void*>(
      static_cast<std::intptr_t>(out[0] == ep && out[1] == eq));
}

void* userop_ptr_main(void* arg) {
  ENV();
  // Take the function address from this rank's own code copy, as a real
  // program would (PIEglobals: each rank's address differs).
  void* fn = env->rank_context().instance->func_addr(
      env->runtime().image().func_id("user_combine"));
  const Op op = env->op_create_from_ptr(fn, /*commutative=*/false);
  const int me = env->rank();
  int v[2] = {affine_p(me), affine_q(me)};
  int out[2] = {-1, -1};
  env->reduce(v, out, 2, Datatype::Int, op, 0);
  if (me != 0) return reinterpret_cast<void*>(std::intptr_t{1});
  int ep = 0, eq = 0;
  affine_expect(env->size(), &ep, &eq);
  return reinterpret_cast<void*>(
      static_cast<std::intptr_t>(out[0] == ep && out[1] == eq));
}

void* comm_split_main(void* arg) {
  ENV();
  const int me = env->rank();
  // Split into odd/even; sum within each half.
  const mpi::CommId half = env->comm_split(mpi::kCommWorld, me % 2, me);
  int v = me;
  int sum = -1;
  env->allreduce(&v, &sum, 1, Datatype::Int, Op::builtin(OpKind::Sum), half);
  int expect = 0;
  for (int i = me % 2; i < env->size(); i += 2) expect += i;
  std::intptr_t ok = sum == expect;
  // Communicator-local ranks are ordered by key (= world rank here).
  if (env->rank(half) != me / 2) ok = 0;
  // A dup of world is independent: message tags do not cross.
  const mpi::CommId dup = env->comm_dup();
  if (env->size(dup) != env->size()) ok = 0;
  env->barrier(dup);
  env->comm_free(dup);
  env->comm_free(half);
  return reinterpret_cast<void*>(ok);
}

}  // namespace

class CollectiveShapes : public ::testing::TestWithParam<JobShape> {};

TEST_P(CollectiveShapes, Bcast) {
  for (auto ok : run_job(&bcast_main, GetParam())) EXPECT_EQ(ok, 1);
}
TEST_P(CollectiveShapes, Reduce) {
  for (auto ok : run_job(&reduce_main, GetParam())) EXPECT_EQ(ok, 1);
}
TEST_P(CollectiveShapes, Allreduce) {
  for (auto ok : run_job(&allreduce_main, GetParam())) EXPECT_EQ(ok, 1);
}
TEST_P(CollectiveShapes, Scan) {
  for (auto ok : run_job(&scan_main, GetParam())) EXPECT_EQ(ok, 1);
}
TEST_P(CollectiveShapes, GatherScatterAllgather) {
  for (auto ok : run_job(&gather_scatter_main, GetParam())) EXPECT_EQ(ok, 1);
}
TEST_P(CollectiveShapes, GathervScatterv) {
  for (auto ok : run_job(&gatherv_main, GetParam())) EXPECT_EQ(ok, 1);
}
TEST_P(CollectiveShapes, Alltoall) {
  for (auto ok : run_job(&alltoall_main, GetParam())) EXPECT_EQ(ok, 1);
}
TEST_P(CollectiveShapes, MaxLoc) {
  for (auto ok : run_job(&maxloc_main, GetParam())) EXPECT_EQ(ok, 1);
}
TEST_P(CollectiveShapes, UserOpNonCommutative) {
  for (auto ok : run_job(&userop_main, GetParam())) EXPECT_EQ(ok, 1);
}
TEST_P(CollectiveShapes, UserOpFromRankLocalPointer) {
  for (auto ok : run_job(&userop_ptr_main, GetParam())) EXPECT_EQ(ok, 1);
}
TEST_P(CollectiveShapes, CommSplitAndDup) {
  for (auto ok : run_job(&comm_split_main, GetParam())) EXPECT_EQ(ok, 1);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CollectiveShapes,
    ::testing::Values(JobShape{1, 1, 1}, JobShape{2, 1, 1}, JobShape{5, 1, 1},
                      JobShape{8, 1, 2}, JobShape{8, 2, 2},
                      JobShape{13, 2, 2}),
    [](const ::testing::TestParamInfo<JobShape>& info) {
      return "vps" + std::to_string(info.param.vps) + "_n" +
             std::to_string(info.param.nodes) + "x" +
             std::to_string(info.param.ppn);
    });

TEST(Collectives, SameResultUnderEveryMethod) {
  for (core::Method m :
       {core::Method::None, core::Method::Swapglobals, core::Method::PIPglobals,
        core::Method::FSglobals, core::Method::PIEglobals}) {
    for (auto ok : run_job(&gather_scatter_main, {4, 1, 1}, m)) {
      EXPECT_EQ(ok, 1) << core::method_name(m);
    }
  }
}

TEST(Collectives, EmptyPeUserOpCombineThrows) {
  // Build a job with an idle PE: 2 ranks block-mapped onto PE 0 of 2 PEs.
  img::ImageBuilder b("emptype");
  b.add_global<int>("unused", 0);
  b.add_function("mpi_main",
                 +[](void* arg) -> void* {
                   static_cast<Env*>(arg)->barrier();
                   return nullptr;
                 });
  b.add_function("user_combine", reinterpret_cast<img::NativeFn>(
                                     +[](const void*, void*, int, Datatype) {
                                     }));
  const img::ProgramImage image = b.build();
  mpi::RuntimeConfig cfg;
  cfg.nodes = 1;
  cfg.pes_per_node = 2;
  cfg.vps = 2;
  cfg.map = "rr";
  cfg.method = core::Method::PIEglobals;
  cfg.slot_bytes = std::size_t{8} << 20;
  mpi::Runtime rt(image, cfg);
  rt.run();

  Op op;
  op.kind = OpKind::User;
  op.user.id = image.func_id("user_combine");
  op.user.code_offset = image.func(op.user.id).code_offset;
  int a = 1, b2 = 2;
  // PE 0 hosts rank 0: combining there works.
  EXPECT_NO_THROW(rt.combine_on_pe(0, op, Datatype::Int, &a, &b2, 1));
  // Remove residents from PE 1 by construction? With map=rr both PEs host
  // one rank; instead check an out-of-job PE state via a 3-PE layout.
  mpi::RuntimeConfig cfg2 = cfg;
  cfg2.pes_per_node = 3;
  cfg2.map = "block";  // 2 ranks on PEs 0 and 1; PE 2 empty
  mpi::Runtime rt2(image, cfg2);
  rt2.run();
  try {
    rt2.combine_on_pe(2, op, Datatype::Int, &a, &b2, 1);
    FAIL() << "empty-PE user-op combine did not throw";
  } catch (const util::ApvError& e) {
    EXPECT_EQ(e.code(), util::ErrorCode::ReductionOnEmptyPe);
  }
  // Built-in ops do not need a rank context anywhere.
  EXPECT_NO_THROW(rt2.combine_on_pe(2, Op::builtin(OpKind::Sum),
                                    Datatype::Int, &a, &b2, 1));
}
