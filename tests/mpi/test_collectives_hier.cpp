// Hierarchical-collective correctness sweep: barrier / bcast / reduce /
// allreduce / scan, commutative (builtin Sum) and non-commutative
// (associative affine-map user op), at 1 / 4 / 16 ranks per PE, with the
// coll.algo=naive escape hatch cross-checked against coll.algo=hier.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "image/image.hpp"
#include "mpi/runtime.hpp"
#include "util/stats.hpp"

using namespace apv;
using mpi::Datatype;
using mpi::Env;
using mpi::Op;
using mpi::OpKind;

namespace {

// Affine maps (p, q) ~ x -> p*x + q under composition: associative but not
// commutative, so order-sensitive folds are validated without relying on
// any particular bracketing.
constexpr int affine_p(int i) { return i % 8 == 0 ? 2 : 1; }
constexpr int affine_q(int i) { return i + 1; }

void affine_fold(int lo, int hi, int* ep, int* eq) {
  *ep = 1;
  *eq = 0;
  for (int i = lo; i < hi; ++i) {
    *eq = *ep * affine_q(i) + *eq;
    *ep = *ep * affine_p(i);
  }
}

// Large enough that a world allreduce crosses the default Rabenseifner
// cutoff (32 KiB): exercises reduce-scatter + allgather above it and
// recursive doubling below it (the small cases elsewhere in this entry).
constexpr int kBigCount = 16384;  // 64 KiB of ints

void* sweep_main(void* arg) {
  auto* env = static_cast<Env*>(arg);
  const int me = env->rank();
  const int n = env->size();
  std::intptr_t ok = 1;
  const auto check = [&ok](bool cond) { ok = ok && cond ? 1 : 0; };

  env->barrier();

  // Bcast from first, middle, and last rank.
  for (const int root : {0, n / 2, n - 1}) {
    long payload[3] = {0, 0, 0};
    if (me == root) {
      payload[0] = 1000 + root;
      payload[1] = 2000 + root;
      payload[2] = 3000 + root;
    }
    env->bcast(payload, 3, Datatype::Long, root);
    check(payload[0] == 1000 + root && payload[1] == 2000 + root &&
          payload[2] == 3000 + root);
  }

  // Commutative reduce to both edge roots.
  for (const int root : {0, n - 1}) {
    int v[4] = {me, me * 2, 1, me + root};
    int out[4] = {-1, -1, -1, -1};
    env->reduce(v, out, 4, Datatype::Int, Op::builtin(OpKind::Sum), root);
    if (me == root) {
      const int s = n * (n - 1) / 2;
      check(out[0] == s && out[1] == 2 * s && out[2] == n &&
            out[3] == s + n * root);
    }
  }

  // Commutative allreduce, small (recursive doubling among leaders).
  {
    int v[2] = {me + 1, me * me};
    int out[2] = {0, 0};
    env->allreduce(v, out, 2, Datatype::Int, Op::builtin(OpKind::Sum));
    int s1 = 0, s2 = 0;
    for (int i = 0; i < n; ++i) {
      s1 += i + 1;
      s2 += i * i;
    }
    check(out[0] == s1 && out[1] == s2);
  }

  // Commutative allreduce, large (Rabenseifner among leaders).
  {
    std::vector<int> v(kBigCount), out(kBigCount, -1);
    for (int i = 0; i < kBigCount; ++i) v[static_cast<std::size_t>(i)] = me + i;
    env->allreduce(v.data(), out.data(), kBigCount, Datatype::Int,
                   Op::builtin(OpKind::Sum));
    const int s = n * (n - 1) / 2;
    bool good = true;
    for (int i = 0; i < kBigCount; ++i)
      good = good && out[static_cast<std::size_t>(i)] == n * i + s;
    check(good);
  }

  // Commutative scan.
  {
    int v = me + 1;
    int out = -1;
    env->scan(&v, &out, 1, Datatype::Int, Op::builtin(OpKind::Sum));
    check(out == (me + 1) * (me + 2) / 2);
  }

  // Non-commutative reduce / allreduce / scan with the affine user op.
  const Op op = env->op_create("user_combine", /*commutative=*/false);
  {
    const int root = (2 * n) / 3;
    int v[2] = {affine_p(me), affine_q(me)};
    int out[2] = {-1, -1};
    env->reduce(v, out, 2, Datatype::Int, op, root);
    if (me == root) {
      int ep = 0, eq = 0;
      affine_fold(0, n, &ep, &eq);
      check(out[0] == ep && out[1] == eq);
    }
  }
  {
    int v[2] = {affine_p(me), affine_q(me)};
    int out[2] = {-1, -1};
    env->allreduce(v, out, 2, Datatype::Int, op);
    int ep = 0, eq = 0;
    affine_fold(0, n, &ep, &eq);
    check(out[0] == ep && out[1] == eq);
  }
  {
    int v[2] = {affine_p(me), affine_q(me)};
    int out[2] = {-1, -1};
    env->scan(v, out, 2, Datatype::Int, op);
    int ep = 0, eq = 0;
    affine_fold(0, me + 1, &ep, &eq);
    check(out[0] == ep && out[1] == eq);
  }

  env->barrier();
  return reinterpret_cast<void*>(ok);
}

struct HierCase {
  int ranks_per_pe;
  bool hier;
};

}  // namespace

class HierSweep : public ::testing::TestWithParam<HierCase> {};

TEST_P(HierSweep, AllCollectivesAgree) {
  const HierCase c = GetParam();
  const int pes = 4;
  img::ImageBuilder b("hiersweep");
  b.add_global<int>("unused", 0);
  b.add_function("mpi_main", &sweep_main);
  b.add_function("user_combine", reinterpret_cast<img::NativeFn>(
                                     +[](const void* in, void* inout,
                                         int len, Datatype) {
                                       const int* a =
                                           static_cast<const int*>(in);
                                       int* b2 = static_cast<int*>(inout);
                                       for (int i = 0; i + 1 < len; i += 2) {
                                         b2[i + 1] =
                                             a[i] * b2[i + 1] + a[i + 1];
                                         b2[i] = a[i] * b2[i];
                                       }
                                     }));
  const img::ProgramImage image = b.build();
  mpi::RuntimeConfig cfg;
  cfg.nodes = 1;
  cfg.pes_per_node = pes;
  cfg.vps = c.ranks_per_pe * pes;
  cfg.method = core::Method::PIEglobals;
  cfg.slot_bytes = std::size_t{8} << 20;
  cfg.options.set("coll.algo", c.hier ? "hier" : "naive");
  mpi::Runtime rt(image, cfg);
  rt.run();
  for (int r = 0; r < cfg.vps; ++r) {
    EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(r)), 1)
        << "rank " << r;
  }
  const util::Counters lc = rt.locality_counters();
  if (c.hier) {
    EXPECT_GT(lc.get("coll_leader_msgs"), 0u);
    if (c.ranks_per_pe > 1) EXPECT_GT(lc.get("coll_local_combines"), 0u);
  } else {
    EXPECT_EQ(lc.get("coll_leader_msgs"), 0u);
    EXPECT_EQ(lc.get("coll_local_combines"), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HierSweep,
    ::testing::Values(HierCase{1, true}, HierCase{1, false},
                      HierCase{4, true}, HierCase{4, false},
                      HierCase{16, true}, HierCase{16, false}),
    [](const ::testing::TestParamInfo<HierCase>& info) {
      return std::string("rpp") + std::to_string(info.param.ranks_per_pe) +
             (info.param.hier ? "_hier" : "_naive");
    });

// ---------------------------------------------------------------------------
// Vector collectives: gather/gatherv/scatter/scatterv/allgather/alltoall,
// hier vs naive bit-identity across root positions, non-uniform counts, and
// a comm_split subset. Small counts take the eager leader phase, kVecBig
// crosses coll.vec_cutoff into the chunked one.

namespace {

constexpr int kVecBig = 1536;  // 6 KiB blocks: world totals cross the cutoff

void* vector_main(void* arg) {
  auto* env = static_cast<Env*>(arg);
  const int me = env->rank();
  const int n = env->size();
  std::intptr_t ok = 1;
  const auto check = [&ok](bool cond) { ok = ok && cond ? 1 : 0; };

  env->barrier();

  // Gather: every root position, eager and chunked block sizes.
  for (const int root : {0, n / 2, n - 1}) {
    for (const int count : {2, kVecBig}) {
      std::vector<int> v(static_cast<std::size_t>(count));
      for (int i = 0; i < count; ++i)
        v[static_cast<std::size_t>(i)] = me * 100000 + i;
      std::vector<int> out;
      if (me == root)
        out.assign(static_cast<std::size_t>(n) * count, -1);
      env->gather(v.data(), count, Datatype::Int, out.data(), count,
                  Datatype::Int, root);
      if (me == root) {
        bool good = true;
        for (int r = 0; r < n; ++r)
          for (int i = 0; i < count; ++i)
            good = good &&
                   out[static_cast<std::size_t>(r * count + i)] ==
                       r * 100000 + i;
        check(good);
      }
    }
  }

  // Gatherv: non-uniform counts (rank i contributes i%3+1 ints).
  for (const int root : {0, n - 1}) {
    const int mine = me % 3 + 1;
    std::vector<int> v(static_cast<std::size_t>(mine));
    for (int i = 0; i < mine; ++i)
      v[static_cast<std::size_t>(i)] = me * 10 + i;
    std::vector<int> counts, displs, out;
    if (me == root) {
      counts.resize(static_cast<std::size_t>(n));
      displs.resize(static_cast<std::size_t>(n));
      int off = 0;
      for (int r = 0; r < n; ++r) {
        counts[static_cast<std::size_t>(r)] = r % 3 + 1;
        displs[static_cast<std::size_t>(r)] = off;
        off += r % 3 + 1;
      }
      out.assign(static_cast<std::size_t>(off), -1);
    }
    env->gatherv(v.data(), mine, Datatype::Int, out.data(), counts.data(),
                 displs.data(), Datatype::Int, root);
    if (me == root) {
      bool good = true;
      int off = 0;
      for (int r = 0; r < n; ++r) {
        for (int i = 0; i < r % 3 + 1; ++i)
          good = good && out[static_cast<std::size_t>(off + i)] == r * 10 + i;
        off += r % 3 + 1;
      }
      check(good);
    }
  }

  // Scatter: eager and chunked block sizes.
  for (const int root : {0, n - 1}) {
    for (const int count : {3, kVecBig}) {
      std::vector<int> v;
      if (me == root) {
        v.resize(static_cast<std::size_t>(n) * count);
        for (int r = 0; r < n; ++r)
          for (int i = 0; i < count; ++i)
            v[static_cast<std::size_t>(r * count + i)] = r * 1000 + i + root;
      }
      std::vector<int> out(static_cast<std::size_t>(count), -1);
      env->scatter(v.data(), count, Datatype::Int, out.data(), count,
                   Datatype::Int, root);
      bool good = true;
      for (int i = 0; i < count; ++i)
        good = good &&
               out[static_cast<std::size_t>(i)] == me * 1000 + i + root;
      check(good);
    }
  }

  // Scatterv: non-uniform counts mirroring the gatherv shape.
  {
    const int root = n / 2;
    const int mine = me % 3 + 1;
    std::vector<int> v, counts, displs;
    if (me == root) {
      counts.resize(static_cast<std::size_t>(n));
      displs.resize(static_cast<std::size_t>(n));
      int off = 0;
      for (int r = 0; r < n; ++r) {
        counts[static_cast<std::size_t>(r)] = r % 3 + 1;
        displs[static_cast<std::size_t>(r)] = off;
        off += r % 3 + 1;
      }
      v.resize(static_cast<std::size_t>(off));
      for (int r = 0; r < n; ++r)
        for (int i = 0; i < r % 3 + 1; ++i)
          v[static_cast<std::size_t>(displs[static_cast<std::size_t>(r)] +
                                     i)] = r * 7 + i;
    }
    std::vector<int> out(static_cast<std::size_t>(mine), -1);
    env->scatterv(v.data(), counts.data(), displs.data(), Datatype::Int,
                  out.data(), mine, Datatype::Int, root);
    bool good = true;
    for (int i = 0; i < mine; ++i)
      good = good && out[static_cast<std::size_t>(i)] == me * 7 + i;
    check(good);
  }

  // Allgather: eager (Bruck) and chunked (ring) leader phases.
  for (const int count : {2, kVecBig}) {
    std::vector<int> v(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i)
      v[static_cast<std::size_t>(i)] = me * 100000 + i;
    std::vector<int> out(static_cast<std::size_t>(n) * count, -1);
    env->allgather(v.data(), count, Datatype::Int, out.data(), count,
                   Datatype::Int);
    bool good = true;
    for (int r = 0; r < n; ++r)
      for (int i = 0; i < count; ++i)
        good = good &&
               out[static_cast<std::size_t>(r * count + i)] ==
                   r * 100000 + i;
    check(good);
  }

  // Alltoall: per-pair blocks, small and mid-size.
  for (const int count : {2, 64}) {
    std::vector<int> v(static_cast<std::size_t>(n) * count);
    for (int r = 0; r < n; ++r)
      for (int i = 0; i < count; ++i)
        v[static_cast<std::size_t>(r * count + i)] = me * 100000 + r * 100 + i;
    std::vector<int> out(static_cast<std::size_t>(n) * count, -1);
    env->alltoall(v.data(), count, Datatype::Int, out.data(), count,
                  Datatype::Int);
    bool good = true;
    for (int r = 0; r < n; ++r)
      for (int i = 0; i < count; ++i)
        good = good &&
               out[static_cast<std::size_t>(r * count + i)] ==
                   r * 100000 + me * 100 + i;
    check(good);
  }

  // Subset communicator: odd/even split, then the uniform trio on it. The
  // subcomm's groups are non-trivial comm-index intervals, exercising the
  // unordered-topology placement paths.
  {
    const mpi::CommId sub = env->comm_split(mpi::kCommWorld, me % 2, me);
    const int sr = env->rank(sub);
    const int sn = env->size(sub);
    const int base = me % 2;  // world rank of sub rank j is base + 2*j
    std::vector<int> v(4);
    for (int i = 0; i < 4; ++i) v[static_cast<std::size_t>(i)] = me * 10 + i;
    std::vector<int> out(static_cast<std::size_t>(sn) * 4, -1);
    env->allgather(v.data(), 4, Datatype::Int, out.data(), 4, Datatype::Int,
                   sub);
    bool good = true;
    for (int j = 0; j < sn; ++j)
      for (int i = 0; i < 4; ++i)
        good = good &&
               out[static_cast<std::size_t>(j * 4 + i)] ==
                   (base + 2 * j) * 10 + i;
    check(good);

    std::vector<int> g(static_cast<std::size_t>(sn), -1);
    const int gv = me + 1;
    env->gather(&gv, 1, Datatype::Int, g.data(), 1, Datatype::Int,
                /*root=*/sn - 1, sub);
    if (sr == sn - 1) {
      for (int j = 0; j < sn; ++j)
        good = good && g[static_cast<std::size_t>(j)] == base + 2 * j + 1;
      check(good);
    }

    std::vector<int> av(static_cast<std::size_t>(sn)), ao(
        static_cast<std::size_t>(sn), -1);
    for (int j = 0; j < sn; ++j)
      av[static_cast<std::size_t>(j)] = me * 100 + j;
    env->alltoall(av.data(), 1, Datatype::Int, ao.data(), 1, Datatype::Int,
                  sub);
    for (int j = 0; j < sn; ++j)
      good = good &&
             ao[static_cast<std::size_t>(j)] == (base + 2 * j) * 100 + sr;
    check(good);
    env->comm_free(sub);
  }

  env->barrier();
  return reinterpret_cast<void*>(ok);
}

}  // namespace

class VectorSweep : public ::testing::TestWithParam<HierCase> {};

TEST_P(VectorSweep, AllVectorCollectivesAgree) {
  const HierCase c = GetParam();
  const int pes = 4;
  img::ImageBuilder b("vecsweep");
  b.add_global<int>("unused", 0);
  b.add_function("mpi_main", &vector_main);
  const img::ProgramImage image = b.build();
  mpi::RuntimeConfig cfg;
  cfg.nodes = 1;
  cfg.pes_per_node = pes;
  cfg.vps = c.ranks_per_pe * pes;
  cfg.method = core::Method::PIEglobals;
  cfg.slot_bytes = std::size_t{8} << 20;
  cfg.options.set("coll.algo", c.hier ? "hier" : "naive");
  mpi::Runtime rt(image, cfg);
  rt.run();
  for (int r = 0; r < cfg.vps; ++r) {
    EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(r)), 1)
        << "rank " << r;
  }
  const util::Counters lc = rt.locality_counters();
  if (c.hier) {
    // Contributions moved through shared group blocks, and leaders (not
    // every rank) carried the inter-PE phase.
    EXPECT_GT(lc.get("coll_vec_bytes"), 0u);
    EXPECT_GT(lc.get("coll_leader_msgs"), 0u);
  } else {
    EXPECT_EQ(lc.get("coll_vec_bytes"), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, VectorSweep,
    ::testing::Values(HierCase{1, true}, HierCase{1, false},
                      HierCase{4, true}, HierCase{4, false},
                      HierCase{16, true}, HierCase{16, false}),
    [](const ::testing::TestParamInfo<HierCase>& info) {
      return std::string("rpp") + std::to_string(info.param.ranks_per_pe) +
             (info.param.hier ? "_hier" : "_naive");
    });

// ---------------------------------------------------------------------------
// Mid-collective PE failure: a rank killed between vector collectives must
// recover from its buddy checkpoint and the re-run must still produce
// bit-identical gathers (no stale group block or half-staged slot survives).

namespace {

void* vector_ft_main(void* arg) {
  auto* env = static_cast<Env*>(arg);
  const int me = env->rank();
  const int n = env->size();
  std::intptr_t ok = 1;
  for (int it = 0; it < 3; ++it) {
    std::vector<int> v(8);
    for (int i = 0; i < 8; ++i)
      v[static_cast<std::size_t>(i)] = me * 100 + i + it;
    std::vector<int> out(static_cast<std::size_t>(n) * 8, -1);
    env->allgather(v.data(), 8, Datatype::Int, out.data(), 8, Datatype::Int);
    for (int r = 0; r < n; ++r)
      for (int i = 0; i < 8; ++i)
        if (out[static_cast<std::size_t>(r * 8 + i)] != r * 100 + i + it)
          ok = 0;
    env->checkpoint_all();  // epoch it+1; PE 1 dies at epoch 2
    std::vector<int> a2a(static_cast<std::size_t>(n)), a2o(
        static_cast<std::size_t>(n), -1);
    for (int r = 0; r < n; ++r)
      a2a[static_cast<std::size_t>(r)] = me * 1000 + r + it;
    env->alltoall(a2a.data(), 1, Datatype::Int, a2o.data(), 1, Datatype::Int);
    for (int r = 0; r < n; ++r)
      if (a2o[static_cast<std::size_t>(r)] != r * 1000 + me + it) ok = 0;
  }
  env->barrier();
  return reinterpret_cast<void*>(ok);
}

}  // namespace

TEST(VectorFaultTolerance, KillBetweenVectorCollectivesRecovers) {
  img::ImageBuilder b("vecft");
  b.add_global<int>("unused", 0);
  b.add_function("mpi_main", &vector_ft_main);
  const img::ProgramImage image = b.build();
  mpi::RuntimeConfig cfg;
  cfg.nodes = 4;  // one PE per node: buddy copies live off-node
  cfg.pes_per_node = 1;
  cfg.vps = 4;
  cfg.method = core::Method::PIEglobals;
  cfg.slot_bytes = std::size_t{16} << 20;
  cfg.options.set("fs.latency_us", "0");
  cfg.options.set("check.mode", "abort");
  cfg.options.set("ft.policy", "epoch");
  cfg.options.set("ft.pe", "1");
  cfg.options.set("ft.epoch", "2");
  mpi::Runtime rt(image, cfg);
  rt.run();
  for (int r = 0; r < 4; ++r)
    EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(r)), 1)
        << "rank " << r;
  EXPECT_GT(rt.recovery_count(), 0u);
  ASSERT_NE(rt.checker(), nullptr);
  EXPECT_EQ(rt.checker()->diagnosis_count(), 0u);
}
