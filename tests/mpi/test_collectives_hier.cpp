// Hierarchical-collective correctness sweep: barrier / bcast / reduce /
// allreduce / scan, commutative (builtin Sum) and non-commutative
// (associative affine-map user op), at 1 / 4 / 16 ranks per PE, with the
// coll.algo=naive escape hatch cross-checked against coll.algo=hier.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "image/image.hpp"
#include "mpi/runtime.hpp"
#include "util/stats.hpp"

using namespace apv;
using mpi::Datatype;
using mpi::Env;
using mpi::Op;
using mpi::OpKind;

namespace {

// Affine maps (p, q) ~ x -> p*x + q under composition: associative but not
// commutative, so order-sensitive folds are validated without relying on
// any particular bracketing.
constexpr int affine_p(int i) { return i % 8 == 0 ? 2 : 1; }
constexpr int affine_q(int i) { return i + 1; }

void affine_fold(int lo, int hi, int* ep, int* eq) {
  *ep = 1;
  *eq = 0;
  for (int i = lo; i < hi; ++i) {
    *eq = *ep * affine_q(i) + *eq;
    *ep = *ep * affine_p(i);
  }
}

// Large enough that a world allreduce crosses the default Rabenseifner
// cutoff (32 KiB): exercises reduce-scatter + allgather above it and
// recursive doubling below it (the small cases elsewhere in this entry).
constexpr int kBigCount = 16384;  // 64 KiB of ints

void* sweep_main(void* arg) {
  auto* env = static_cast<Env*>(arg);
  const int me = env->rank();
  const int n = env->size();
  std::intptr_t ok = 1;
  const auto check = [&ok](bool cond) { ok = ok && cond ? 1 : 0; };

  env->barrier();

  // Bcast from first, middle, and last rank.
  for (const int root : {0, n / 2, n - 1}) {
    long payload[3] = {0, 0, 0};
    if (me == root) {
      payload[0] = 1000 + root;
      payload[1] = 2000 + root;
      payload[2] = 3000 + root;
    }
    env->bcast(payload, 3, Datatype::Long, root);
    check(payload[0] == 1000 + root && payload[1] == 2000 + root &&
          payload[2] == 3000 + root);
  }

  // Commutative reduce to both edge roots.
  for (const int root : {0, n - 1}) {
    int v[4] = {me, me * 2, 1, me + root};
    int out[4] = {-1, -1, -1, -1};
    env->reduce(v, out, 4, Datatype::Int, Op::builtin(OpKind::Sum), root);
    if (me == root) {
      const int s = n * (n - 1) / 2;
      check(out[0] == s && out[1] == 2 * s && out[2] == n &&
            out[3] == s + n * root);
    }
  }

  // Commutative allreduce, small (recursive doubling among leaders).
  {
    int v[2] = {me + 1, me * me};
    int out[2] = {0, 0};
    env->allreduce(v, out, 2, Datatype::Int, Op::builtin(OpKind::Sum));
    int s1 = 0, s2 = 0;
    for (int i = 0; i < n; ++i) {
      s1 += i + 1;
      s2 += i * i;
    }
    check(out[0] == s1 && out[1] == s2);
  }

  // Commutative allreduce, large (Rabenseifner among leaders).
  {
    std::vector<int> v(kBigCount), out(kBigCount, -1);
    for (int i = 0; i < kBigCount; ++i) v[static_cast<std::size_t>(i)] = me + i;
    env->allreduce(v.data(), out.data(), kBigCount, Datatype::Int,
                   Op::builtin(OpKind::Sum));
    const int s = n * (n - 1) / 2;
    bool good = true;
    for (int i = 0; i < kBigCount; ++i)
      good = good && out[static_cast<std::size_t>(i)] == n * i + s;
    check(good);
  }

  // Commutative scan.
  {
    int v = me + 1;
    int out = -1;
    env->scan(&v, &out, 1, Datatype::Int, Op::builtin(OpKind::Sum));
    check(out == (me + 1) * (me + 2) / 2);
  }

  // Non-commutative reduce / allreduce / scan with the affine user op.
  const Op op = env->op_create("user_combine", /*commutative=*/false);
  {
    const int root = (2 * n) / 3;
    int v[2] = {affine_p(me), affine_q(me)};
    int out[2] = {-1, -1};
    env->reduce(v, out, 2, Datatype::Int, op, root);
    if (me == root) {
      int ep = 0, eq = 0;
      affine_fold(0, n, &ep, &eq);
      check(out[0] == ep && out[1] == eq);
    }
  }
  {
    int v[2] = {affine_p(me), affine_q(me)};
    int out[2] = {-1, -1};
    env->allreduce(v, out, 2, Datatype::Int, op);
    int ep = 0, eq = 0;
    affine_fold(0, n, &ep, &eq);
    check(out[0] == ep && out[1] == eq);
  }
  {
    int v[2] = {affine_p(me), affine_q(me)};
    int out[2] = {-1, -1};
    env->scan(v, out, 2, Datatype::Int, op);
    int ep = 0, eq = 0;
    affine_fold(0, me + 1, &ep, &eq);
    check(out[0] == ep && out[1] == eq);
  }

  env->barrier();
  return reinterpret_cast<void*>(ok);
}

struct HierCase {
  int ranks_per_pe;
  bool hier;
};

}  // namespace

class HierSweep : public ::testing::TestWithParam<HierCase> {};

TEST_P(HierSweep, AllCollectivesAgree) {
  const HierCase c = GetParam();
  const int pes = 4;
  img::ImageBuilder b("hiersweep");
  b.add_global<int>("unused", 0);
  b.add_function("mpi_main", &sweep_main);
  b.add_function("user_combine", reinterpret_cast<img::NativeFn>(
                                     +[](const void* in, void* inout,
                                         int len, Datatype) {
                                       const int* a =
                                           static_cast<const int*>(in);
                                       int* b2 = static_cast<int*>(inout);
                                       for (int i = 0; i + 1 < len; i += 2) {
                                         b2[i + 1] =
                                             a[i] * b2[i + 1] + a[i + 1];
                                         b2[i] = a[i] * b2[i];
                                       }
                                     }));
  const img::ProgramImage image = b.build();
  mpi::RuntimeConfig cfg;
  cfg.nodes = 1;
  cfg.pes_per_node = pes;
  cfg.vps = c.ranks_per_pe * pes;
  cfg.method = core::Method::PIEglobals;
  cfg.slot_bytes = std::size_t{8} << 20;
  cfg.options.set("coll.algo", c.hier ? "hier" : "naive");
  mpi::Runtime rt(image, cfg);
  rt.run();
  for (int r = 0; r < cfg.vps; ++r) {
    EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(r)), 1)
        << "rank " << r;
  }
  const util::Counters lc = rt.locality_counters();
  if (c.hier) {
    EXPECT_GT(lc.get("coll_leader_msgs"), 0u);
    if (c.ranks_per_pe > 1) EXPECT_GT(lc.get("coll_local_combines"), 0u);
  } else {
    EXPECT_EQ(lc.get("coll_leader_msgs"), 0u);
    EXPECT_EQ(lc.get("coll_local_combines"), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HierSweep,
    ::testing::Values(HierCase{1, true}, HierCase{1, false},
                      HierCase{4, true}, HierCase{4, false},
                      HierCase{16, true}, HierCase{16, false}),
    [](const ::testing::TestParamInfo<HierCase>& info) {
      return std::string("rpp") + std::to_string(info.param.ranks_per_pe) +
             (info.param.hier ? "_hier" : "_naive");
    });
