// Same-PE inline delivery: FIFO ordering under mixed inline / aggregated
// remote traffic with a mid-stream receiver migration, bit-identical
// payloads, and the comm.inline=off escape hatch reproducing the routed
// path.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "image/image.hpp"
#include "mpi/runtime.hpp"
#include "util/stats.hpp"

using namespace apv;
using mpi::Datatype;
using mpi::Env;

namespace {

using EntryFn = void* (*)(void*);

// Stream shape: two senders (one co-resident with the receiver, one
// remote) each push kMsgs framed messages; the receiver consumes them with
// wildcard receives and migrates to the remote sender's PE mid-stream,
// flipping which sender is inline.
constexpr int kMsgs = 64;
constexpr int kSenders = 2;
constexpr int kSenderRanks[kSenders] = {1, 4};

// Message i from sender s: a 4-int header (sender, seq) then a deterministic
// byte pattern; sizes straddle the 512-byte aggregation threshold so the
// remote stream mixes bundled and direct messages.
int stream_bytes(int i) { return 16 + (i % 5) * 200; }
unsigned char stream_byte(int s, int i, int j) {
  return static_cast<unsigned char>((s * 31 + i * 7 + j) & 0xff);
}

void fill_stream_msg(std::vector<unsigned char>& buf, int s, int i) {
  const int bytes = stream_bytes(i);
  buf.resize(static_cast<std::size_t>(bytes));
  int hdr[2] = {s, i};
  std::memcpy(buf.data(), hdr, sizeof hdr);
  for (int j = static_cast<int>(sizeof hdr); j < bytes; ++j)
    buf[static_cast<std::size_t>(j)] = stream_byte(s, i, j);
}

void* fifo_main(void* arg) {
  auto* env = static_cast<Env*>(arg);
  const int me = env->rank();
  std::intptr_t ok = 1;

  bool sender = false;
  for (const int s : kSenderRanks) sender = sender || s == me;

  if (me == 0) {
    // Receiver: consume both streams with wildcard receives, checking
    // per-sender order and every payload byte. Migrate to the remote
    // sender's PE a third of the way through.
    std::vector<unsigned char> buf(4096);
    std::vector<unsigned char> want;
    int next_seq[kSenders] = {0, 0};
    const int total = kSenders * kMsgs;
    for (int got = 0; got < total; ++got) {
      if (got == total / 3 && env->num_pes() > 1) {
        env->migrate_to((env->my_pe() + 1) % env->num_pes());
      }
      const mpi::Status st =
          env->recv(buf.data(), static_cast<int>(buf.size()), Datatype::Byte,
                    mpi::kAnySource, /*tag=*/7);
      int hdr[2];
      std::memcpy(hdr, buf.data(), sizeof hdr);
      const int s = hdr[0], seq = hdr[1];
      if (s < 0 || s >= kSenders || st.source != kSenderRanks[s]) {
        ok = 0;
        break;
      }
      // Per-sender FIFO: sequence numbers arrive strictly in send order.
      if (seq != next_seq[s]++) {
        ok = 0;
        break;
      }
      fill_stream_msg(want, s, seq);
      if (st.count_bytes != static_cast<int>(want.size()) ||
          std::memcmp(buf.data(), want.data(), want.size()) != 0) {
        ok = 0;
        break;
      }
    }
  } else if (sender) {
    const int s = me == kSenderRanks[0] ? 0 : 1;
    std::vector<unsigned char> buf;
    for (int i = 0; i < kMsgs; ++i) {
      fill_stream_msg(buf, s, i);
      env->send(buf.data(), static_cast<int>(buf.size()), Datatype::Byte, 0,
                /*tag=*/7);
      if (i % 9 == 0) env->yield();
    }
  }
  env->barrier();
  return reinterpret_cast<void*>(ok);
}

// Co-resident ping-pong that must ride the inline path end to end.
void* inline_pingpong_main(void* arg) {
  auto* env = static_cast<Env*>(arg);
  const int me = env->rank();
  int v = 0;
  std::intptr_t ok = 1;
  for (int i = 0; i < 100; ++i) {
    if (me == 0) {
      v = i * 3 + 1;
      env->send(&v, 1, Datatype::Int, 1, 5);
      env->recv(&v, 1, Datatype::Int, 1, 6);
      if (v != i * 3 + 2) ok = 0;
    } else {
      env->recv(&v, 1, Datatype::Int, 0, 5);
      ++v;
      env->send(&v, 1, Datatype::Int, 0, 6);
    }
  }
  return reinterpret_cast<void*>(ok);
}

std::vector<std::intptr_t> run_fifo_job(EntryFn entry, int vps, int pes,
                                        bool inline_on) {
  img::ImageBuilder b("inlinejob");
  b.add_global<int>("unused", 0);
  b.add_function("mpi_main", entry);
  const img::ProgramImage image = b.build();
  mpi::RuntimeConfig cfg;
  cfg.nodes = 1;
  cfg.pes_per_node = pes;
  cfg.vps = vps;
  cfg.method = core::Method::PIEglobals;
  cfg.slot_bytes = std::size_t{8} << 20;
  if (!inline_on) cfg.options.set("comm.inline", "off");
  mpi::Runtime rt(image, cfg);
  rt.run();
  std::vector<std::intptr_t> out;
  out.push_back(reinterpret_cast<std::intptr_t>(rt.rank_return(0)));
  const util::Counters lc = rt.locality_counters();
  out.push_back(static_cast<std::intptr_t>(lc.get("inline_hits") +
                                           lc.get("inline_misses")));
  return out;
}

}  // namespace

// The tentpole FIFO guarantee: per-sender order and bit-identical payloads
// survive the mix of inline delivery, aggregated remote messages, and a
// receiver migration that flips which sender is co-resident.
TEST(InlineDelivery, FifoAcrossMigrationAndAggregation) {
  // 8 ranks block-mapped on 2 PEs: sender 1 starts co-resident with the
  // receiver, sender 4 starts remote; the migration swaps the roles.
  const auto res = run_fifo_job(&fifo_main, 8, 2, /*inline_on=*/true);
  EXPECT_EQ(res[0], 1);
  EXPECT_GT(res[1], 0);  // the inline path actually engaged
}

// Escape hatch: comm.inline=off must reproduce the seed's routed-only
// behaviour, bit for bit, with the fast path fully disengaged.
TEST(InlineDelivery, FifoWithInlineDisabledMatchesSeed) {
  const auto res = run_fifo_job(&fifo_main, 8, 2, /*inline_on=*/false);
  EXPECT_EQ(res[0], 1);
  EXPECT_EQ(res[1], 0);
}

// Pure same-PE ping-pong: every send after the first posted receive should
// hit the inline path (posted-receive match, no unexpected queueing).
TEST(InlineDelivery, SamePePingPongUsesInlinePath) {
  img::ImageBuilder b("inlinepp");
  b.add_global<int>("unused", 0);
  b.add_function("mpi_main", &inline_pingpong_main);
  const img::ProgramImage image = b.build();
  mpi::RuntimeConfig cfg;
  cfg.nodes = 1;
  cfg.pes_per_node = 1;
  cfg.vps = 2;
  cfg.method = core::Method::None;
  cfg.slot_bytes = std::size_t{8} << 20;
  mpi::Runtime rt(image, cfg);
  rt.run();
  EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(0)), 1);
  const util::Counters lc = rt.locality_counters();
  EXPECT_GT(lc.get("inline_hits") + lc.get("inline_misses"), 0u);
  EXPECT_EQ(lc.get("inline_fifo_fallbacks"), 0u);
}
