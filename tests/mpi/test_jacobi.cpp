// Jacobi-3D integration test: exercises irecv/send/waitall halo exchange,
// allreduce, rank heap allocation, and privatized hot-loop globals under
// every method — and checks all methods compute the identical residual.

#include <gtest/gtest.h>

#include <cmath>

#include "apps/jacobi.hpp"
#include "mpi/runtime.hpp"

using namespace apv;

namespace {

double run_jacobi(core::Method method, int vps, int nodes = 1, int ppn = 1) {
  apps::JacobiParams params;
  params.nx = 12;
  params.ny = 12;
  params.nz = 24;
  params.iters = 8;
  params.residual_every = 4;
  params.code_bytes = 1 << 20;
  params.tag_tls = method == core::Method::TLSglobals;
  const img::ProgramImage image = apps::build_jacobi(params);

  mpi::RuntimeConfig cfg;
  cfg.nodes = nodes;
  cfg.pes_per_node = ppn;
  cfg.vps = vps;
  cfg.method = method;
  cfg.slot_bytes = std::size_t{8} << 20;
  cfg.options.set("fs.latency_us", "0");
  mpi::Runtime rt(image, cfg);
  rt.run();
  const double residual = apps::jacobi_result(rt.rank_return(0));
  EXPECT_TRUE(std::isfinite(residual));
  EXPECT_GT(residual, 0.0);
  return residual;
}

}  // namespace

TEST(Jacobi, SingleRankBaseline) { run_jacobi(core::Method::None, 1); }

class JacobiPerMethod : public ::testing::TestWithParam<core::Method> {};

TEST_P(JacobiPerMethod, SameResidualAsSerial) {
  const double serial = run_jacobi(core::Method::None, 1);
  const double parallel = run_jacobi(GetParam(), 4);
  // The decomposition changes only communication, not arithmetic: the
  // global residual must match the serial run bit-for-bit apart from
  // reduction-order rounding.
  EXPECT_NEAR(parallel, serial, 1e-9 * serial);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, JacobiPerMethod,
    ::testing::Values(core::Method::TLSglobals, core::Method::Swapglobals,
                      core::Method::PIPglobals, core::Method::FSglobals,
                      core::Method::PIEglobals),
    [](const ::testing::TestParamInfo<core::Method>& info) {
      return core::method_name(info.param);
    });

TEST(Jacobi, SmpMultiNode) {
  const double serial = run_jacobi(core::Method::None, 1);
  const double smp = run_jacobi(core::Method::PIEglobals, 8, 2, 2);
  EXPECT_NEAR(smp, serial, 1e-9 * serial);
}
