// Rank migration, load balancing, and checkpoint/restart tests.

#include <gtest/gtest.h>

#include <cstring>

#include "mpi/runtime.hpp"
#include "test_programs.hpp"
#include "util/error.hpp"

using namespace apv;

namespace {

mpi::RuntimeConfig cfg_pes(core::Method method, int vps, int pes,
                           int nodes = 0) {
  mpi::RuntimeConfig cfg;
  cfg.nodes = nodes > 0 ? nodes : pes;  // default: one PE per node
  cfg.pes_per_node = nodes > 0 ? pes / nodes : 1;
  cfg.vps = vps;
  cfg.method = method;
  cfg.slot_bytes = std::size_t{16} << 20;
  cfg.options.set("fs.latency_us", "0");
  return cfg;
}

// Program: fill a rank-heap array and a stack array, migrate to the PE
// given by (rank+1) % npes, and verify every byte and the privatized
// global survive at the same virtual addresses.
void* migrate_main(void* arg) {
  auto* env = static_cast<mpi::Env*>(arg);
  const int me = env->rank();
  const bool privatized =
      env->rank_context().method != core::Method::None;
  auto g = env->global<int>("my_value");
  g.set(1000 + me);

  const int n = 4096;
  int* heap_data = env->rank_alloc_array<int>(n);
  int stack_data[64];
  for (int i = 0; i < n; ++i) heap_data[i] = me * 100000 + i;
  for (int i = 0; i < 64; ++i) stack_data[i] = me * 7 + i;
  int* heap_before = heap_data;

  const int from_pe = env->my_pe();
  env->migrate_to((env->my_pe() + 1) % env->num_pes());
  const int to_pe = env->my_pe();

  std::intptr_t ok = 1;
  if (env->num_pes() > 1 && to_pe == from_pe) ok = 0;        // did not move
  if (heap_data != heap_before) ok = 0;                      // VA changed
  for (int i = 0; i < n; ++i)
    if (heap_data[i] != me * 100000 + i) ok = 0;             // heap lost
  for (int i = 0; i < 64; ++i)
    if (stack_data[i] != me * 7 + i) ok = 0;                 // stack lost
  if (privatized && g.get() != 1000 + me) ok = 0;            // global lost
  env->rank_free(heap_data);
  env->barrier();
  return reinterpret_cast<void*>(ok);
}

img::ProgramImage build_migrate(bool tag_tls = false) {
  img::ImageBuilder b("migrate");
  b.add_global<int>("my_value", 0, {.is_tls = tag_tls});
  b.add_function("mpi_main", &migrate_main);
  return b.build();
}

}  // namespace

class MigratePerMethod : public ::testing::TestWithParam<core::Method> {};

TEST_P(MigratePerMethod, StatePreservedAcrossPes) {
  const bool tagged = GetParam() == core::Method::TLSglobals;
  const img::ProgramImage image = build_migrate(tagged);
  mpi::Runtime rt(image, cfg_pes(GetParam(), 4, 4));
  rt.run();
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(r)), 1)
        << "rank " << r;
  }
  EXPECT_EQ(rt.migration_count(), 4u);
  EXPECT_GT(rt.migration_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    MigratableMethods, MigratePerMethod,
    ::testing::Values(core::Method::None, core::Method::TLSglobals,
                      core::Method::Swapglobals, core::Method::PIEglobals),
    [](const ::testing::TestParamInfo<core::Method>& info) {
      return core::method_name(info.param);
    });

class MigrateRefusedPerMethod : public ::testing::TestWithParam<core::Method> {
};

TEST_P(MigrateRefusedPerMethod, PipAndFsRefuseMigration) {
  // Swapglobals requires non-SMP; use 1 PE per node layouts. PIP/FS rank
  // migration must fail with MigrationRefused, which surfaces as a rank
  // failure from wait_finish.
  const img::ProgramImage image = build_migrate();
  mpi::Runtime rt(image, cfg_pes(GetParam(), 2, 2));
  EXPECT_THROW(rt.run(), util::ApvError);
}

INSTANTIATE_TEST_SUITE_P(
    NonMigratableMethods, MigrateRefusedPerMethod,
    ::testing::Values(core::Method::PIPglobals, core::Method::FSglobals),
    [](const ::testing::TestParamInfo<core::Method>& info) {
      return core::method_name(info.param);
    });

namespace {

void* lb_main(void* arg) {
  auto* env = static_cast<mpi::Env*>(arg);
  const int pe_before = env->my_pe();
  env->load_balance("rotate");
  const int pe_after = env->my_pe();
  env->barrier();
  return pe_after != pe_before ? reinterpret_cast<void*>(1) : nullptr;
}

void* greedy_main(void* arg) {
  auto* env = static_cast<mpi::Env*>(arg);
  // Unbalanced explicit loads: rank 0 is heavy.
  env->add_load(env->rank() == 0 ? 10.0 : 0.1);
  env->load_balance("greedyrefine");
  env->barrier();
  return reinterpret_cast<void*>(
      static_cast<std::intptr_t>(env->my_pe()));
}

img::ProgramImage build_entry(const char* name, img::NativeFn fn) {
  img::ImageBuilder b(name);
  b.add_global<int>("unused", 0);
  b.add_function("mpi_main", fn);
  return b.build();
}

}  // namespace

TEST(LoadBalance, RotateMovesEveryRank) {
  const img::ProgramImage image = build_entry("lbrotate", &lb_main);
  mpi::Runtime rt(image, cfg_pes(core::Method::PIEglobals, 4, 2));
  rt.run();
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(r)), 1);
  }
  EXPECT_EQ(rt.migration_count(), 4u);
}

TEST(LoadBalance, GreedyRefineSeparatesHeavyRank) {
  const img::ProgramImage image = build_entry("lbgreedy", &greedy_main);
  mpi::Runtime rt(image, cfg_pes(core::Method::PIEglobals, 4, 2));
  rt.run();
  // After balancing, the heavy rank 0 should not share a PE with all
  // three light ranks.
  const auto pe0 = reinterpret_cast<std::intptr_t>(rt.rank_return(0));
  int sharing = 0;
  for (int r = 1; r < 4; ++r) {
    if (reinterpret_cast<std::intptr_t>(rt.rank_return(r)) == pe0) ++sharing;
  }
  EXPECT_LT(sharing, 3);
}

namespace {

void* ckpt_main(void* arg) {
  auto* env = static_cast<mpi::Env*>(arg);
  int* counter = env->rank_alloc_array<int>(1);
  *counter = 10;
  const int restored = env->checkpoint();
  // First pass: restored == 0; mutate and roll back. Second pass (after
  // restore): restored == 1 and the mutation must be gone.
  if (restored == 0) {
    *counter = 999;
    env->barrier();
    env->runtime().do_restore(env->state());  // collective rewind
    return nullptr;                           // unreachable
  }
  const std::intptr_t ok = (*counter == 10) ? 1 : 0;
  env->barrier();
  return reinterpret_cast<void*>(ok);
}

}  // namespace

TEST(Checkpoint, RestoreRewindsHeapAndControlFlow) {
  const img::ProgramImage image = build_entry("ckpt", &ckpt_main);
  mpi::Runtime rt(image, cfg_pes(core::Method::PIEglobals, 2, 2));
  rt.run();
  EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(0)), 1);
  EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(1)), 1);
}

namespace {

// Rank 1 migrates away while rank 0 sends to it: the message must be
// forwarded to the new location.
void* forward_main(void* arg) {
  auto* env = static_cast<mpi::Env*>(arg);
  const int me = env->rank();
  if (me == 1) {
    env->migrate_to((env->my_pe() + 1) % env->num_pes());
    int value = -1;
    env->recv(&value, 1, mpi::Datatype::Int, 0, 5);
    env->barrier();
    return reinterpret_cast<void*>(static_cast<std::intptr_t>(value));
  }
  if (me == 0) {
    int value = 4242;
    env->send(&value, 1, mpi::Datatype::Int, 1, 5);
  }
  env->barrier();
  return nullptr;
}

}  // namespace

TEST(Migration, MessagesFollowMigratedRank) {
  const img::ProgramImage image = build_entry("forward", &forward_main);
  mpi::Runtime rt(image, cfg_pes(core::Method::PIEglobals, 3, 3));
  rt.run();
  EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(1)), 4242);
}
