// Point-to-point semantics tests: matching rules, wildcards, ordering,
// nonblocking completion, probe, errors. Each test is an emulated program
// run on the full runtime (2-4 ranks, PIEglobals unless stated).

#include <gtest/gtest.h>

#include <cstring>

#include "image/image.hpp"
#include "mpi/runtime.hpp"
#include "util/error.hpp"

using namespace apv;
using mpi::Datatype;
using mpi::Env;

namespace {

using EntryFn = void* (*)(void*);

// Runs `entry` as a vps-rank job and returns per-rank intptr results.
std::vector<std::intptr_t> run_job(EntryFn entry, int vps, int pes = 1,
                                   core::Method method =
                                       core::Method::PIEglobals) {
  img::ImageBuilder b("p2pjob");
  b.add_global<int>("unused", 0);
  b.add_function("mpi_main", entry);
  const img::ProgramImage image = b.build();
  mpi::RuntimeConfig cfg;
  cfg.nodes = 1;
  cfg.pes_per_node = pes;
  cfg.vps = vps;
  cfg.method = method;
  cfg.slot_bytes = std::size_t{8} << 20;
  mpi::Runtime rt(image, cfg);
  rt.run();
  std::vector<std::intptr_t> out;
  for (int r = 0; r < vps; ++r)
    out.push_back(reinterpret_cast<std::intptr_t>(rt.rank_return(r)));
  return out;
}

#define ENV() auto* env = static_cast<Env*>(arg)

void* basic_roundtrip(void* arg) {
  ENV();
  if (env->rank() == 0) {
    int v = 1234;
    env->send(&v, 1, Datatype::Int, 1, 10);
    int back = 0;
    env->recv(&back, 1, Datatype::Int, 1, 11);
    return reinterpret_cast<void*>(static_cast<std::intptr_t>(back));
  }
  int v = 0;
  const mpi::Status st = env->recv(&v, 1, Datatype::Int, 0, 10);
  EXPECT_EQ(st.source, 0);
  EXPECT_EQ(st.tag, 10);
  EXPECT_EQ(st.count(Datatype::Int), 1);
  v += 1;
  env->send(&v, 1, Datatype::Int, 0, 11);
  return reinterpret_cast<void*>(static_cast<std::intptr_t>(v));
}

}  // namespace

TEST(P2P, BlockingRoundTrip) {
  const auto r = run_job(&basic_roundtrip, 2);
  EXPECT_EQ(r[0], 1235);
  EXPECT_EQ(r[1], 1235);
}

namespace {
void* wildcard_recv(void* arg) {
  ENV();
  if (env->rank() == 0) {
    int sum = 0;
    for (int i = 1; i < env->size(); ++i) {
      int v = 0;
      const mpi::Status st =
          env->recv(&v, 1, Datatype::Int, mpi::kAnySource, mpi::kAnyTag);
      EXPECT_EQ(st.tag, 100 + st.source);
      sum += v;
    }
    return reinterpret_cast<void*>(static_cast<std::intptr_t>(sum));
  }
  int v = env->rank() * env->rank();
  env->send(&v, 1, Datatype::Int, 0, 100 + env->rank());
  return nullptr;
}
}  // namespace

TEST(P2P, WildcardSourceAndTag) {
  const auto r = run_job(&wildcard_recv, 4);
  EXPECT_EQ(r[0], 1 + 4 + 9);
}

namespace {
void* ordering_main(void* arg) {
  ENV();
  if (env->rank() == 0) {
    for (int i = 0; i < 50; ++i) env->send(&i, 1, Datatype::Int, 1, 5);
    return nullptr;
  }
  // Non-overtaking: same (src, tag, comm) messages arrive in send order.
  std::intptr_t ok = 1;
  for (int i = 0; i < 50; ++i) {
    int v = -1;
    env->recv(&v, 1, Datatype::Int, 0, 5);
    if (v != i) ok = 0;
  }
  return reinterpret_cast<void*>(ok);
}
}  // namespace

TEST(P2P, NonOvertakingOrder) {
  const auto r = run_job(&ordering_main, 2);
  EXPECT_EQ(r[1], 1);
}

namespace {
void* unexpected_then_post(void* arg) {
  ENV();
  if (env->rank() == 0) {
    int v = 77;
    env->send(&v, 1, Datatype::Int, 1, 3);
    env->barrier();
    return nullptr;
  }
  // Let the message become "unexpected" before posting the receive.
  env->barrier();
  int v = 0;
  env->recv(&v, 1, Datatype::Int, 0, 3);
  return reinterpret_cast<void*>(static_cast<std::intptr_t>(v));
}
}  // namespace

TEST(P2P, UnexpectedMessageBuffered) {
  const auto r = run_job(&unexpected_then_post, 2);
  EXPECT_EQ(r[1], 77);
}

namespace {
void* nonblocking_main(void* arg) {
  ENV();
  if (env->rank() == 0) {
    int vals[4] = {10, 20, 30, 40};
    mpi::Request reqs[4];
    for (int i = 0; i < 4; ++i)
      reqs[i] = env->isend(&vals[i], 1, Datatype::Int, 1, i);
    env->waitall(4, reqs);
    return nullptr;
  }
  int got[4] = {0, 0, 0, 0};
  mpi::Request reqs[4];
  // Post out of order; match by tag.
  for (int i = 3; i >= 0; --i)
    reqs[i] = env->irecv(&got[i], 1, Datatype::Int, 0, i);
  env->waitall(4, reqs);
  return reinterpret_cast<void*>(static_cast<std::intptr_t>(
      got[0] + got[1] * 2 + got[2] * 3 + got[3] * 4));
}
}  // namespace

TEST(P2P, NonblockingOutOfOrderTags) {
  const auto r = run_job(&nonblocking_main, 2);
  EXPECT_EQ(r[1], 10 + 40 + 90 + 160);
}

namespace {
void* waitany_main(void* arg) {
  ENV();
  if (env->rank() == 0) {
    env->barrier();
    int v = 5;
    env->send(&v, 1, Datatype::Int, 1, 2);  // first, only tag 2 arrives
    env->barrier();
    v = 9;
    env->send(&v, 1, Datatype::Int, 1, 1);  // then complete the other
    return nullptr;
  }
  int a = 0, b = 0;
  mpi::Request reqs[2] = {env->irecv(&a, 1, Datatype::Int, 0, 1),
                          env->irecv(&b, 1, Datatype::Int, 0, 2)};
  env->barrier();
  mpi::Status st;
  const int idx = env->waitany(2, reqs, &st);
  EXPECT_EQ(idx, 1);
  EXPECT_EQ(b, 5);
  EXPECT_EQ(reqs[1], mpi::kRequestNull);
  EXPECT_NE(reqs[0], mpi::kRequestNull);  // still pending
  env->barrier();
  env->wait(reqs[0]);
  return reinterpret_cast<void*>(static_cast<std::intptr_t>(a + b));
}
}  // namespace

TEST(P2P, WaitanyPicksTheCompletedRequest) {
  const auto r = run_job(&waitany_main, 2);
  EXPECT_EQ(r[1], 14);
}

namespace {
void* test_and_probe_main(void* arg) {
  ENV();
  if (env->rank() == 0) {
    env->barrier();
    double v = 2.5;
    env->send(&v, 1, Datatype::Double, 1, 8);
    return nullptr;
  }
  mpi::Status st;
  EXPECT_FALSE(env->iprobe(0, 8, mpi::kCommWorld, &st));
  env->barrier();
  // Blocking probe sees the message without consuming it.
  st = env->probe(0, 8);
  EXPECT_EQ(st.source, 0);
  EXPECT_EQ(st.count(Datatype::Double), 1);
  double v = 0.0;
  mpi::Request req = env->irecv(&v, 1, Datatype::Double, 0, 8);
  mpi::Status st2;
  EXPECT_TRUE(env->test(req, &st2));  // already matched from unexpected
  return reinterpret_cast<void*>(static_cast<std::intptr_t>(v * 4));
}
}  // namespace

TEST(P2P, TestAndProbe) {
  const auto r = run_job(&test_and_probe_main, 2);
  EXPECT_EQ(r[1], 10);
}

namespace {
void* sendrecv_main(void* arg) {
  ENV();
  const int me = env->rank();
  const int n = env->size();
  int token = me;
  int incoming = -1;
  // Ring shift by one, no deadlock thanks to eager sends.
  env->sendrecv(&token, 1, Datatype::Int, (me + 1) % n, 1, &incoming, 1,
                Datatype::Int, (me - 1 + n) % n, 1);
  return reinterpret_cast<void*>(static_cast<std::intptr_t>(incoming));
}
}  // namespace

TEST(P2P, SendrecvRingShift) {
  const auto r = run_job(&sendrecv_main, 4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(r[i], (i + 3) % 4);
}

namespace {
void* self_send_main(void* arg) {
  ENV();
  int v = 321;
  env->send(&v, 1, Datatype::Int, env->rank(), 0);
  int got = 0;
  env->recv(&got, 1, Datatype::Int, env->rank(), 0);
  return reinterpret_cast<void*>(static_cast<std::intptr_t>(got));
}
}  // namespace

TEST(P2P, SelfSendCompletes) {
  const auto r = run_job(&self_send_main, 2);
  EXPECT_EQ(r[0], 321);
  EXPECT_EQ(r[1], 321);
}

namespace {
void* truncation_main(void* arg) {
  ENV();
  if (env->rank() == 0) {
    int big[8] = {1, 2, 3, 4, 5, 6, 7, 8};
    env->send(big, 8, Datatype::Int, 1, 1);
    return nullptr;
  }
  int tiny[2];
  env->recv(tiny, 2, Datatype::Int, 0, 1);  // must throw: 32 bytes into 8
  return nullptr;
}
}  // namespace

TEST(P2P, TruncationIsAnError) {
  img::ImageBuilder b("trunc");
  b.add_global<int>("unused", 0);
  b.add_function("mpi_main", &truncation_main);
  const img::ProgramImage image = b.build();
  mpi::RuntimeConfig cfg;
  cfg.vps = 2;
  cfg.method = core::Method::None;
  cfg.slot_bytes = std::size_t{8} << 20;
  mpi::Runtime rt(image, cfg);
  EXPECT_THROW(rt.run(), util::ApvError);
}

namespace {
void* bad_tag_main(void* arg) {
  ENV();
  int v = 0;
  env->send(&v, 1, Datatype::Int, env->rank(), 1 << 30);  // internal space
  return nullptr;
}
}  // namespace

TEST(P2P, UserTagsCannotEnterInternalSpace) {
  img::ImageBuilder b("badtag");
  b.add_global<int>("unused", 0);
  b.add_function("mpi_main", &bad_tag_main);
  const img::ProgramImage image = b.build();
  mpi::RuntimeConfig cfg;
  cfg.vps = 1;
  cfg.method = core::Method::None;
  cfg.slot_bytes = std::size_t{8} << 20;
  mpi::Runtime rt(image, cfg);
  EXPECT_THROW(rt.run(), util::ApvError);
}

namespace {
void* cross_pe_stress(void* arg) {
  ENV();
  const int me = env->rank();
  const int n = env->size();
  std::intptr_t sum = 0;
  for (int round = 0; round < 30; ++round) {
    const int partner = (me + 1 + round % (n - 1)) % n;
    int out = me * 1000 + round;
    int in = -1;
    env->sendrecv(&out, 1, Datatype::Int, partner, round, &in, 1,
                  Datatype::Int, mpi::kAnySource, round);
    sum += in;
  }
  env->barrier();
  return reinterpret_cast<void*>(sum);
}
}  // namespace

TEST(P2P, CrossPeStressSmp) {
  // 8 ranks over 2 nodes x 2 PEs: exercises inter-PE and inter-node paths.
  const auto r = run_job(&cross_pe_stress, 8, 2);
  std::intptr_t total = 0;
  for (auto v : r) total += v;
  EXPECT_GT(total, 0);
}
