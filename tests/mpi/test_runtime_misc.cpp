// Remaining runtime surface: AMPI extensions (wtime, yield, PE queries,
// rank heap), multiple checkpoint generations, startup validation errors,
// SMP refusal through the Runtime, and scheduler fairness.

#include <gtest/gtest.h>

#include <cstring>

#include "image/image.hpp"
#include "mpi/runtime.hpp"
#include "util/error.hpp"

using namespace apv;
using mpi::Datatype;
using mpi::Env;

namespace {

using EntryFn = void* (*)(void*);

img::ProgramImage entry_image(const char* name, EntryFn fn) {
  img::ImageBuilder b(name);
  b.add_global<int>("unused", 0);
  b.add_function("mpi_main", fn);
  return b.build();
}

mpi::RuntimeConfig base_cfg(int vps, int pes = 1) {
  mpi::RuntimeConfig cfg;
  cfg.pes_per_node = pes;
  cfg.vps = vps;
  cfg.method = core::Method::PIEglobals;
  cfg.slot_bytes = std::size_t{8} << 20;
  return cfg;
}

#define ENV() auto* env = static_cast<Env*>(arg)

void* ext_main(void* arg) {
  ENV();
  std::intptr_t ok = 1;
  if (env->my_pe() < 0 || env->my_pe() >= env->num_pes()) ok = 0;
  if (env->my_node() != 0) ok = 0;
  const double t0 = env->wtime();
  env->compute(0.002);
  const double t1 = env->wtime();
  if (t1 - t0 < 0.0015) ok = 0;  // compute() really burned the time
  if (env->wtick() <= 0.0 || env->wtick() > 1e-3) ok = 0;
  // Rank heap allocations are inside the rank's own slot.
  void* p = env->rank_malloc(1024);
  const auto& rc = env->rank_context();
  if (!env->runtime().arena().contains(rc.slot, p)) ok = 0;
  env->rank_free(p);
  return reinterpret_cast<void*>(ok);
}

}  // namespace

TEST(RuntimeMisc, AmpiExtensionSurface) {
  const img::ProgramImage image = entry_image("ext", &ext_main);
  mpi::Runtime rt(image, base_cfg(2, 2));
  rt.run();
  EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(0)), 1);
  EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(1)), 1);
}

namespace {
void* yield_fair_main(void* arg) {
  ENV();
  // Both ranks on one PE count in lockstep through yields; after N rounds
  // both must have advanced — cooperative fairness.
  static std::atomic<int> counters[2];
  if (env->rank() == 0) {
    counters[0] = 0;
    counters[1] = 0;
  }
  env->barrier();
  for (int i = 0; i < 100; ++i) {
    counters[env->rank()]++;
    env->yield();
    const int mine = counters[env->rank()].load();
    const int other = counters[1 - env->rank()].load();
    if (std::abs(mine - other) > 2) {
      return nullptr;  // starvation
    }
  }
  env->barrier();
  return reinterpret_cast<void*>(std::intptr_t{1});
}
}  // namespace

TEST(RuntimeMisc, YieldIsFair) {
  const img::ProgramImage image = entry_image("fair", &yield_fair_main);
  mpi::Runtime rt(image, base_cfg(2, 1));
  rt.run();
  EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(0)), 1);
  EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(1)), 1);
}

namespace {
void* multi_ckpt_main(void* arg) {
  ENV();
  int* v = env->rank_alloc_array<int>(1);
  *v = 1;
  int r1 = env->checkpoint();  // generation 1: v == 1
  if (r1 == 0) {
    *v = 2;
    const int r2 = env->checkpoint();  // generation 2: v == 2 (overwrites)
    if (r2 == 0) {
      *v = 3;
      env->barrier();
      env->runtime().do_restore(env->state());  // rewinds to generation 2
    }
    // Resumed from generation 2.
    const std::intptr_t ok = (*v == 2) ? 1 : 0;
    env->barrier();
    return reinterpret_cast<void*>(ok);
  }
  return nullptr;  // unreachable: restore lands at the *latest* checkpoint
}
}  // namespace

TEST(RuntimeMisc, RestoreUsesLatestCheckpointGeneration) {
  const img::ProgramImage image = entry_image("multickpt", &multi_ckpt_main);
  mpi::Runtime rt(image, base_cfg(2, 2));
  rt.run();
  EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(0)), 1);
  EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(1)), 1);
}

TEST(RuntimeMisc, MissingEntryRejectedEarly) {
  img::ImageBuilder b("noentry");
  b.add_global<int>("x", 0);
  b.add_function("not_main", +[](void* a) -> void* { return a; });
  const img::ProgramImage image = b.build();
  EXPECT_THROW(mpi::Runtime(image, base_cfg(1)), util::ApvError);
}

TEST(RuntimeMisc, InvalidShapesRejected) {
  const img::ProgramImage image =
      entry_image("shape", +[](void* a) -> void* { return a; });
  mpi::RuntimeConfig cfg = base_cfg(0);
  EXPECT_THROW(mpi::Runtime(image, cfg), util::ApvError);
  cfg = base_cfg(1);
  cfg.nodes = 0;
  EXPECT_THROW(mpi::Runtime(image, cfg), util::ApvError);
}

TEST(RuntimeMisc, SwapglobalsSmpRefusedThroughRuntime) {
  const img::ProgramImage image =
      entry_image("swapsmp", +[](void* a) -> void* { return a; });
  mpi::RuntimeConfig cfg = base_cfg(4, /*pes=*/2);
  cfg.method = core::Method::Swapglobals;
  try {
    mpi::Runtime rt(image, cfg);
    FAIL() << "SMP Swapglobals not refused";
  } catch (const util::ApvError& e) {
    EXPECT_EQ(e.code(), util::ErrorCode::NotSupported);
  }
}

TEST(RuntimeMisc, PipVirtualizationLimitThroughRuntime) {
  const img::ProgramImage image =
      entry_image("piplimit", +[](void* a) -> void* { return a; });
  mpi::RuntimeConfig cfg = base_cfg(16, 1);
  cfg.method = core::Method::PIPglobals;
  // 16 VPs in one process exceeds the 12-namespace stock-glibc cap...
  EXPECT_THROW(mpi::Runtime(image, cfg), util::ApvError);
  // ...and the PiP-patched glibc lifts it.
  cfg.options.set_bool("loader.patched_glibc", true);
  mpi::Runtime rt(image, cfg);
  rt.run();
}

TEST(RuntimeMisc, RoundRobinAndBlockMapsPlaceAsDocumented) {
  const img::ProgramImage image =
      entry_image("maps", +[](void* arg) -> void* {
        return reinterpret_cast<void*>(
            static_cast<std::intptr_t>(static_cast<Env*>(arg)->my_pe()));
      });
  mpi::RuntimeConfig cfg = base_cfg(4, 2);
  cfg.map = "rr";
  mpi::Runtime rr(image, cfg);
  rr.run();
  EXPECT_EQ(reinterpret_cast<std::intptr_t>(rr.rank_return(0)), 0);
  EXPECT_EQ(reinterpret_cast<std::intptr_t>(rr.rank_return(1)), 1);
  EXPECT_EQ(reinterpret_cast<std::intptr_t>(rr.rank_return(2)), 0);

  cfg.map = "block";
  mpi::Runtime blk(image, cfg);
  blk.run();
  EXPECT_EQ(reinterpret_cast<std::intptr_t>(blk.rank_return(0)), 0);
  EXPECT_EQ(reinterpret_cast<std::intptr_t>(blk.rank_return(1)), 0);
  EXPECT_EQ(reinterpret_cast<std::intptr_t>(blk.rank_return(2)), 1);
}

TEST(RuntimeMisc, StatisticsAccumulate) {
  const img::ProgramImage image = entry_image(
      "stats", +[](void* arg) -> void* {
        auto* env = static_cast<Env*>(arg);
        int v = env->rank();
        int sum = 0;
        env->allreduce(&v, &sum, 1, Datatype::Int,
                       mpi::Op::builtin(mpi::OpKind::Sum));
        return nullptr;
      });
  mpi::Runtime rt(image, base_cfg(4, 2));
  rt.run();
  EXPECT_GT(rt.cluster().messages_sent(), 0u);
  EXPECT_GT(rt.total_context_switches(), 0u);
  EXPECT_EQ(rt.migration_count(), 0u);
}
