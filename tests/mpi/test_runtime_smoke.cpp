// End-to-end smoke tests: the paper's Figure 2/3 behaviour and basic rank
// execution under every privatization method.

#include <gtest/gtest.h>

#include "core/method.hpp"
#include "mpi/runtime.hpp"
#include "test_programs.hpp"

using namespace apv;

namespace {

mpi::RuntimeConfig small_config(core::Method method, int vps = 2,
                                int nodes = 1, int ppn = 1) {
  mpi::RuntimeConfig cfg;
  cfg.nodes = nodes;
  cfg.pes_per_node = ppn;
  cfg.vps = vps;
  cfg.method = method;
  cfg.slot_bytes = std::size_t{16} << 20;
  cfg.options.set("fs.latency_us", "0");  // fast tests
  return cfg;
}

std::intptr_t ret_of(mpi::Runtime& rt, int rank) {
  return reinterpret_cast<std::intptr_t>(rt.rank_return(rank));
}

}  // namespace

TEST(RuntimeSmoke, Figure3BugWithoutPrivatization) {
  const img::ProgramImage hello = test::build_hello();
  mpi::Runtime rt(hello, small_config(core::Method::None));
  rt.run();
  // Both ranks share my_rank; both observe the same (last-written) value —
  // the paper's "rank: 1 / rank: 1" output.
  EXPECT_EQ(ret_of(rt, 0), ret_of(rt, 1));
}

class HelloPerMethod : public ::testing::TestWithParam<core::Method> {};

TEST_P(HelloPerMethod, EachRankSeesItsOwnRank) {
  // TLSglobals only privatizes what the user tagged thread_local; the
  // automatic methods handle the untagged original.
  const bool tagged = GetParam() == core::Method::TLSglobals;
  const img::ProgramImage hello = test::build_hello(0, tagged);
  mpi::Runtime rt(hello, small_config(GetParam(), 4));
  rt.run();
  for (int r = 0; r < 4; ++r) EXPECT_EQ(ret_of(rt, r), r) << "rank " << r;
}

TEST(RuntimeSmoke, TlsGlobalsWithoutTaggingStillHasTheBug) {
  const img::ProgramImage hello = test::build_hello(0, /*tag_tls=*/false);
  mpi::Runtime rt(hello, small_config(core::Method::TLSglobals, 2));
  rt.run();
  EXPECT_EQ(ret_of(rt, 0), ret_of(rt, 1));
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, HelloPerMethod,
    ::testing::Values(core::Method::TLSglobals, core::Method::Swapglobals,
                      core::Method::PIPglobals, core::Method::FSglobals,
                      core::Method::PIEglobals),
    [](const ::testing::TestParamInfo<core::Method>& info) {
      return core::method_name(info.param);
    });

TEST(RuntimeSmoke, HelloAcrossNodesAndPes) {
  const img::ProgramImage hello = test::build_hello();
  mpi::Runtime rt(hello,
                  small_config(core::Method::PIEglobals, 8, /*nodes=*/2,
                               /*ppn=*/2));
  rt.run();
  for (int r = 0; r < 8; ++r) EXPECT_EQ(ret_of(rt, r), r);
}

TEST(RuntimeSmoke, StartupTimeIsMeasured) {
  const img::ProgramImage hello = test::build_hello();
  mpi::Runtime rt(hello, small_config(core::Method::PIEglobals));
  EXPECT_GT(rt.init_time_s(), 0.0);
  rt.run();
}
