// Scheduler-tier integration tests: priority lanes vs the fifo escape
// hatch (A/B result identity), cooperative preemption under real traffic,
// the runtime checker staying false-positive-free with preemption armed,
// and idle-PE rank stealing racing checkpoints and PE failure.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "image/image.hpp"
#include "mpi/runtime.hpp"
#include "util/stats.hpp"

using namespace apv;
using mpi::Datatype;
using mpi::Env;

namespace {

img::ProgramImage build_entry(const char* name, img::NativeFn fn) {
  img::ImageBuilder b(name);
  b.add_global<int>("unused", 0);
  b.add_function("mpi_main", fn);
  return b.build();
}

// Deterministic mixed traffic: a ring of small p2p messages (they ride the
// high-priority lane when lanes are on) interleaved with allreduces. The
// returned checksum depends on every hop, so any delivery or matching
// difference between scheduling policies shows up as a different value.
void* ring_mix_main(void* arg) {
  auto* env = static_cast<Env*>(arg);
  const int me = env->rank();
  const int n = env->size();
  const int right = (me + 1) % n;
  const int left = (me + n - 1) % n;
  // Unsigned accumulator: the rolling checksum wraps by design after a few
  // dozen hops, which is UB on a signed type (UBSan: signed overflow).
  std::uintptr_t sum = 0;
  for (int i = 0; i < 24; ++i) {
    int out = me * 1000 + i;
    int in = -1;
    env->sendrecv(&out, 1, Datatype::Int, right, 3, &in, 1, Datatype::Int,
                  left, 3);
    sum = sum * 31 + static_cast<unsigned>(in);
    if (i % 6 == 5) {
      long v = static_cast<long>(sum % 9973), total = 0;
      env->allreduce(&v, &total, 1, Datatype::Long, mpi::Op::builtin(mpi::OpKind::Sum));
      sum += static_cast<std::uintptr_t>(total);
    }
  }
  env->barrier();
  return reinterpret_cast<void*>(sum);
}

struct MixResult {
  std::vector<std::intptr_t> returns;
  util::Counters sched;
};

MixResult run_ring_mix(const char* policy, bool preempt) {
  img::ProgramImage image = build_entry("schedmix", &ring_mix_main);
  mpi::RuntimeConfig cfg;
  cfg.nodes = 1;
  cfg.pes_per_node = 2;
  cfg.vps = 6;
  cfg.method = core::Method::PIEglobals;
  cfg.slot_bytes = std::size_t{8} << 20;
  cfg.options.set("sched.policy", policy);
  cfg.options.set("sched.preempt", preempt ? "on" : "off");
  mpi::Runtime rt(image, cfg);
  rt.run();
  MixResult res;
  for (int r = 0; r < cfg.vps; ++r)
    res.returns.push_back(reinterpret_cast<std::intptr_t>(rt.rank_return(r)));
  res.sched = rt.sched_counters();
  return res;
}

}  // namespace

// A/B identity: the multi-lane scheduler reorders *when* ranks run, never
// *what* they compute — prio and fifo must produce identical results. The
// fifo run must also show the fast path fully disengaged (seed behaviour:
// everything is a Normal-lane dispatch, nothing preempted, nothing stolen).
TEST(SchedPolicy, PrioAndFifoProduceIdenticalResults) {
  const MixResult prio = run_ring_mix("prio", /*preempt=*/false);
  const MixResult fifo = run_ring_mix("fifo", /*preempt=*/false);
  ASSERT_EQ(prio.returns.size(), fifo.returns.size());
  for (std::size_t r = 0; r < prio.returns.size(); ++r)
    EXPECT_EQ(prio.returns[r], fifo.returns[r]) << "rank " << r;

  // Small cross-PE p2p must actually engage the high lane under prio…
  EXPECT_GT(prio.sched.get("sched_dispatch_high"), 0u);
  // …and fifo must collapse everything onto the Normal lane.
  EXPECT_EQ(fifo.sched.get("sched_dispatch_high"), 0u);
  EXPECT_EQ(fifo.sched.get("sched_dispatch_bulk"), 0u);
  EXPECT_GT(fifo.sched.get("sched_dispatch_normal"), 0u);
  EXPECT_EQ(fifo.sched.get("sched_preemptions"), 0u);
  EXPECT_EQ(fifo.sched.get("sched_steals_in"), 0u);
}

// Preemption changes interleaving, not answers; fifo forces it off even
// when requested (the escape hatch dominates).
TEST(SchedPolicy, PreemptionPreservesResults) {
  const MixResult base = run_ring_mix("prio", /*preempt=*/false);
  const MixResult pre = run_ring_mix("prio", /*preempt=*/true);
  const MixResult fifo = run_ring_mix("fifo", /*preempt=*/true);
  for (std::size_t r = 0; r < base.returns.size(); ++r) {
    EXPECT_EQ(base.returns[r], pre.returns[r]) << "rank " << r;
    EXPECT_EQ(base.returns[r], fifo.returns[r]) << "rank " << r;
  }
  EXPECT_EQ(fifo.sched.get("sched_preemptions"), 0u);
}

namespace {

// Two compute hogs sharing one PE: with a tiny quantum each hog's
// preempt points must demote it behind the other, so both make
// interleaved progress instead of running to completion back to back.
void* hog_main(void* arg) {
  auto* env = static_cast<Env*>(arg);
  for (int i = 0; i < 5; ++i) env->compute(0.002);
  env->barrier();
  return reinterpret_cast<void*>(std::intptr_t{1});
}

}  // namespace

TEST(SchedPreempt, ComputeHogsGetPreempted) {
  img::ProgramImage image = build_entry("schedhog", &hog_main);
  mpi::RuntimeConfig cfg;
  cfg.nodes = 1;
  cfg.pes_per_node = 1;
  cfg.vps = 2;
  cfg.method = core::Method::None;
  cfg.slot_bytes = std::size_t{8} << 20;
  cfg.options.set("sched.preempt", "on");
  cfg.options.set_int("sched.quantum_us", 50);
  mpi::Runtime rt(image, cfg);
  rt.run();
  for (int r = 0; r < cfg.vps; ++r)
    EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(r)), 1);
  const util::Counters c = rt.sched_counters();
  EXPECT_GT(c.get("sched_preemptions"), 0u);
  EXPECT_GT(c.get("sched_dispatch_bulk"), 0u);  // demotions land in Bulk
}

namespace {

// ring_mix plus enough per-iteration compute that a 50µs quantum actually
// expires between messages — the checker then observes genuinely
// preempted p2p and collective traffic.
void* checker_mix_main(void* arg) {
  auto* env = static_cast<Env*>(arg);
  const int me = env->rank();
  const int n = env->size();
  const int right = (me + 1) % n;
  const int left = (me + n - 1) % n;
  // Unsigned accumulator, same rationale as ring_mix_main: the checksum
  // wraps by design, which a signed type makes UB.
  std::uintptr_t sum = 0;
  for (int i = 0; i < 12; ++i) {
    env->compute(0.0005);
    int out = me * 1000 + i;
    int in = -1;
    env->sendrecv(&out, 1, Datatype::Int, right, 3, &in, 1, Datatype::Int,
                  left, 3);
    sum = sum * 31 + static_cast<unsigned>(in);
    if (i % 4 == 3) {
      long v = static_cast<long>(sum % 9973), total = 0;
      env->allreduce(&v, &total, 1, Datatype::Long,
                     mpi::Op::builtin(mpi::OpKind::Sum));
      sum += static_cast<std::uintptr_t>(total);
    }
  }
  env->barrier();
  return reinterpret_cast<void*>(sum);
}

}  // namespace

// The runtime correctness checker must stay false-positive-free when
// preemption reorders rank execution: check.mode=abort turns any
// false positive into a test failure.
TEST(SchedPreempt, CheckerCleanUnderPreemption) {
  img::ProgramImage image = build_entry("schedchk", &checker_mix_main);
  mpi::RuntimeConfig cfg;
  cfg.nodes = 1;
  cfg.pes_per_node = 2;
  cfg.vps = 6;
  cfg.method = core::Method::PIEglobals;
  cfg.slot_bytes = std::size_t{8} << 20;
  cfg.options.set("check.mode", "abort");
  cfg.options.set("sched.preempt", "on");
  cfg.options.set_int("sched.quantum_us", 50);
  mpi::Runtime rt(image, cfg);
  rt.run();  // an abort-mode violation would throw out of run()
  const util::Counters c = rt.check_counters();
  EXPECT_EQ(c.get("check_coll_mismatches"), 0u);
  EXPECT_GT(rt.sched_counters().get("sched_preemptions"), 0u);
}

namespace {

// Steal shape: everyone crowds onto PE 0, leaving PE 1 idle with a deep
// ready backlog next door. The compute/yield loop keeps several ranks
// queued Ready at any moment, which is exactly what the thief needs.
void* crowd_main(void* arg) {
  auto* env = static_cast<Env*>(arg);
  if (env->my_pe() != 0) env->migrate_to(0);
  env->barrier();
  for (int i = 0; i < 30; ++i) env->compute(0.001);
  long one = 1, total = 0;
  env->allreduce(&one, &total, 1, Datatype::Long, mpi::Op::builtin(mpi::OpKind::Sum));
  env->barrier();
  return reinterpret_cast<void*>(static_cast<std::intptr_t>(total));
}

}  // namespace

TEST(SchedSteal, IdlePeStealsFromCrowdedNeighbor) {
  img::ProgramImage image = build_entry("schedsteal", &crowd_main);
  mpi::RuntimeConfig cfg;
  cfg.nodes = 1;
  cfg.pes_per_node = 2;
  cfg.vps = 6;
  cfg.method = core::Method::PIEglobals;
  cfg.slot_bytes = std::size_t{8} << 20;
  cfg.options.set("sched.steal", "on");
  cfg.options.set_int("sched.steal_idle_us", 50);
  // Preemption keeps the victim's slice boundaries frequent, so queued
  // steal requests are serviced promptly instead of waiting out a whole
  // compute slice (the bench pairs priority+steal the same way).
  cfg.options.set("sched.preempt", "on");
  cfg.options.set_int("sched.quantum_us", 100);
  mpi::Runtime rt(image, cfg);
  rt.run();
  for (int r = 0; r < cfg.vps; ++r) {
    EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(r)), cfg.vps)
        << "rank " << r;
  }
  const util::Counters c = rt.sched_counters();
  EXPECT_GE(c.get("sched_steal_requests"), 1u);
  EXPECT_GE(c.get("sched_steals_in"), 1u);
  EXPECT_EQ(c.get("sched_steals_in"), c.get("sched_steals_out"));
}

namespace {

// Steals racing checkpoints: ranks crowd one PE, then interleave compute
// with full-cluster checkpoints while the idle PE keeps trying to steal.
// Heap integrity across the run proves no rank was packed mid-flight.
void* steal_ckpt_main(void* arg) {
  auto* env = static_cast<Env*>(arg);
  const int me = env->rank();
  constexpr std::size_t kBytes = 64 << 10;
  auto* buf = static_cast<unsigned char*>(env->rank_malloc(kBytes));
  for (std::size_t i = 0; i < kBytes; ++i)
    buf[i] = static_cast<unsigned char>(i * 13 + me);
  if (env->my_pe() != 0) env->migrate_to(0);
  env->barrier();
  std::intptr_t ok = 1;
  for (int iter = 0; iter < 4; ++iter) {
    for (int i = 0; i < 8; ++i) env->compute(0.0005);
    if (env->checkpoint_all() != 0) ok = 0;  // no failure injected
  }
  for (std::size_t i = 0; i < kBytes; ++i) {
    if (buf[i] != static_cast<unsigned char>(i * 13 + me)) ok = 0;
  }
  env->rank_free(buf);
  env->barrier();
  return reinterpret_cast<void*>(ok);
}

}  // namespace

TEST(SchedSteal, StealsDuringCheckpointsKeepStateIntact) {
  img::ProgramImage image = build_entry("stealckpt", &steal_ckpt_main);
  mpi::RuntimeConfig cfg;
  cfg.nodes = 2;
  cfg.pes_per_node = 1;
  cfg.vps = 6;
  cfg.method = core::Method::PIEglobals;
  cfg.slot_bytes = std::size_t{8} << 20;
  cfg.options.set("fs.latency_us", "0");
  cfg.options.set("sched.steal", "on");
  cfg.options.set_int("sched.steal_idle_us", 50);
  mpi::Runtime rt(image, cfg);
  rt.run();
  for (int r = 0; r < cfg.vps; ++r)
    EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(r)), 1)
        << "rank " << r;
}

namespace {

// Steal vs fail_pe: PE 1 is killed at the second checkpoint epoch while
// stealing is armed. Recovery must adopt the victims and the steal
// machinery must not resurrect state on (or from) the dead PE.
void* steal_kill_main(void* arg) {
  auto* env = static_cast<Env*>(arg);
  const int me = env->rank();
  constexpr std::size_t kBytes = 256 << 10;
  auto* buf = static_cast<unsigned char*>(env->rank_malloc(kBytes));
  for (std::size_t i = 0; i < kBytes; ++i)
    buf[i] = static_cast<unsigned char>(i * 17 + me);
  const int r1 = env->checkpoint_all();  // epoch 1: fault-free
  for (int i = 0; i < 6; ++i) env->compute(0.0005);
  const int r2 = env->checkpoint_all();  // epoch 2: PE 1 dies here
  for (int i = 0; i < 6; ++i) env->compute(0.0005);
  bool intact = true;
  for (std::size_t i = 0; i < kBytes; ++i) {
    if (buf[i] != static_cast<unsigned char>(i * 17 + me)) intact = false;
  }
  env->rank_free(buf);
  env->barrier();
  return reinterpret_cast<void*>(
      static_cast<std::intptr_t>(intact && r1 == 0 && r2 == 1 ? 1 : 0));
}

}  // namespace

TEST(SchedSteal, StealSurvivesPeFailure) {
  img::ProgramImage image = build_entry("stealkill", &steal_kill_main);
  mpi::RuntimeConfig cfg;
  cfg.nodes = 2;
  cfg.pes_per_node = 1;
  cfg.vps = 4;
  cfg.method = core::Method::PIEglobals;
  cfg.slot_bytes = std::size_t{8} << 20;
  cfg.options.set("fs.latency_us", "0");
  cfg.options.set("sched.steal", "on");
  cfg.options.set_int("sched.steal_idle_us", 50);
  cfg.options.set("ft.policy", "epoch");
  cfg.options.set("ft.pe", "1");
  cfg.options.set("ft.epoch", "2");
  mpi::Runtime rt(image, cfg);
  rt.run();
  ASSERT_NE(rt.fault_injector(), nullptr);
  EXPECT_EQ(rt.fault_injector()->kills(), 1);
  for (int r = 0; r < cfg.vps; ++r)
    EXPECT_EQ(reinterpret_cast<std::intptr_t>(rt.rank_return(r)), 1)
        << "rank " << r;
}
