// Sanitizer-focused regression tests.
//
// The stress test runs (and must pass) in every build; under
// -DAPV_SANITIZE=thread it additionally drives TSan across the exact
// cross-thread edges the scheduler's lock-free ready path relies on (Treiber
// MPSC push vs owner drain vs unqueue steal departures). The death tests are
// ASan-only negative harnesses: they prove the manual poisoning actually
// fires on stale accesses (a quarantine that never kills anything is
// indistinguishable from one that is wired up wrong).

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "comm/payload.hpp"
#include "isomalloc/slot_heap.hpp"
#include "ult/scheduler.hpp"
#include "util/sanitizers.hpp"

using namespace apv;

namespace {

struct CountArg {
  ult::Scheduler* sched;
  std::atomic<int>* ran;
};

void count_and_yield_body(void* arg) {
  auto* a = static_cast<CountArg*>(arg);
  a->ran->fetch_add(1, std::memory_order_relaxed);
  a->sched->yield();  // one requeue so every ULT crosses the lanes twice
}

void trivial_body(void*) {}

}  // namespace

// Producer threads hammer Scheduler::ready() — the lock-free Treiber MPSC
// push — while the owner thread drains, dispatches, and interleaves
// unqueue() calls (the rank-stealing departure path). This is the
// interleaving a PE sees when remote PEs wake work on it while it
// simultaneously pulls queued ranks back out. Each ULT is pushed exactly
// once by exactly one producer (the scheduler's contract: ready() targets a
// non-queued, non-running ULT); all the contention under test lives in the
// push/drain/unqueue machinery and the idle_wait cv handshake.
TEST(SanStress, CrossThreadReadyVsOwnerDrainAndUnqueue) {
  constexpr int kProducers = 3;
  constexpr int kBatch = 64;
  constexpr int kTotal = kProducers * kBatch;

  ult::Scheduler sched;
  std::atomic<int> ran{0};
  CountArg arg{&sched, &ran};

  std::vector<std::vector<char>> stacks;
  std::vector<std::unique_ptr<ult::Ult>> ults;
  for (int i = 0; i < kTotal; ++i) {
    stacks.emplace_back(128 * 1024);
    ults.push_back(std::make_unique<ult::Ult>(
        static_cast<ult::Ult::Id>(i + 1), count_and_yield_body, &arg,
        stacks.back().data(), stacks.back().size()));
  }

  // Bind the owner thread (and give unqueue a resident victim) before the
  // producers start pushing.
  std::vector<char> park_stack(64 * 1024);
  ult::Ult parked(9999, trivial_body, nullptr, park_stack.data(),
                  park_stack.size());
  ASSERT_FALSE(sched.run_one());  // binds owner; queue empty

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kBatch; ++i) {
        sched.ready(ults[static_cast<std::size_t>(p * kBatch + i)].get());
        if (i % 8 == 0) std::this_thread::yield();
      }
    });
  }

  int idle = 0;
  while (ran.load(std::memory_order_relaxed) < kTotal) {
    if (!sched.run_one()) {
      std::this_thread::yield();
      ++idle;
    }
    // Steal-departure interleave: queue a local ULT and immediately remove
    // it while remote pushes land concurrently. unqueue() must find it (the
    // owner did nothing in between) without perturbing the remote stack.
    if (idle % 32 == 1) {
      sched.ready(&parked);
      EXPECT_TRUE(sched.unqueue(&parked));
    }
  }
  for (auto& t : producers) t.join();
  sched.run_until_quiescent();  // drain the final yields → all Done
  EXPECT_EQ(ran.load(), kTotal);
  for (auto& u : ults) EXPECT_EQ(u->state(), ult::UltState::Done);
  // Let the parked ULT actually run so its fiber retires cleanly.
  sched.ready(&parked);
  sched.run_until_quiescent();
  EXPECT_EQ(parked.state(), ult::UltState::Done);
}

#if APV_ASAN

// A Payload view kept past its buffer's release must die on first touch:
// pool_put quarantines the chunk (poison), so the stale read is a loud
// use-after-poison instead of silently observing recycled bytes.
TEST(SanAsanDeath, StalePayloadViewDiesOnUse) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        comm::pool::set_enabled(true);
        std::byte* stale = nullptr;
        {
          comm::Payload p = comm::Payload::acquire(128);
          p.data()[0] = std::byte{42};
          stale = p.data();
        }  // last ref dropped: chunk returns to the pool, poisoned
        volatile std::byte b = stale[0];
        (void)b;
      },
      "use-after-poison");
}

// Freed slot-heap blocks are quarantined beyond their in-band FreeLinks; a
// rank's dangling pointer into its own heap must die the same way.
TEST(SanAsanDeath, SlotHeapUseAfterFreeDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        constexpr std::size_t kSlot = std::size_t{1} << 20;
        std::vector<char> slotv(kSlot + 16);
        void* base = reinterpret_cast<void*>(
            (reinterpret_cast<std::uintptr_t>(slotv.data()) + 15) & ~15ull);
        iso::SlotHeap* heap = iso::SlotHeap::format(base, kSlot);
        char* p = static_cast<char*>(heap->alloc(256));
        std::memset(p, 0x5a, 256);
        heap->free(p);
        // The first 16 payload bytes now hold live FreeLinks (addressable);
        // everything beyond is quarantined.
        volatile char c = p[64];
        (void)c;
      },
      "use-after-poison");
}

#else

TEST(SanAsanDeath, SkippedWithoutAsan) {
  GTEST_SKIP() << "ASan quarantine death tests require -DAPV_SANITIZE=address";
}

#endif  // APV_ASAN
