// Virtual-time cluster simulator: sanity and shape tests.

#include <gtest/gtest.h>

#include <cstdio>

#include "sim/surge.hpp"

using namespace apv;

namespace {
sim::SurgeConfig quick_surge() {
  sim::SurgeConfig cfg;
  cfg.cells = 2048;
  cfg.steps = 80;
  return cfg;
}

sim::MachineModel machine(int ppn) {
  sim::MachineModel m;
  m.pes_per_node = ppn;
  return m;
}
}  // namespace

TEST(ClusterSim, SerialTimeMatchesWorkSum) {
  // One PE, one rank, no comm partners: makespan == sum of per-step work
  // plus per-step switch overhead.
  sim::ClusterSim::Config cfg;
  cfg.pes = 1;
  cfg.vps = 1;
  cfg.steps = 10;
  cfg.machine = machine(1);
  cfg.work_us = [](int, int) { return 100.0; };
  cfg.allreduce_per_step = false;
  auto result = sim::ClusterSim(std::move(cfg)).run();
  const double expect_us = 10 * (100.0 + 0.12);
  EXPECT_NEAR(result.time_s * 1e6, expect_us, 1.0);
}

TEST(ClusterSim, PerfectParallelismScales) {
  auto run_with_pes = [&](int pes) {
    sim::ClusterSim::Config cfg;
    cfg.pes = pes;
    cfg.vps = 8;  // fixed total work, spread over more PEs
    cfg.steps = 20;
    cfg.machine = machine(pes);
    cfg.work_us = [](int, int) { return 500.0; };
    cfg.allreduce_per_step = false;
    return sim::ClusterSim(std::move(cfg)).run().time_s;
  };
  const double t1 = run_with_pes(1);
  const double t8 = run_with_pes(8);
  // Uniform independent work: 8 PEs should be ~8x faster.
  EXPECT_NEAR(t1 / t8, 8.0, 0.5);
}

TEST(ClusterSim, ImbalancedWorkIsBoundByHotPe) {
  sim::ClusterSim::Config cfg;
  cfg.pes = 4;
  cfg.vps = 4;
  cfg.steps = 10;
  cfg.machine = machine(4);
  cfg.work_us = [](int rank, int) { return rank == 0 ? 1000.0 : 10.0; };
  cfg.allreduce_per_step = false;
  auto result = sim::ClusterSim(std::move(cfg)).run();
  EXPECT_GE(result.time_s * 1e6, 10 * 1000.0);
  EXPECT_GT(result.final_imbalance, 3.0);
}

TEST(ClusterSim, OverdecompositionPlusLbBeatsBaseline) {
  const sim::SurgeConfig surge = quick_surge();
  const int pes = 4;
  const auto base = sim::run_surge(surge, pes, pes, /*lb_period=*/0,
                                   "none", machine(pes), 1 << 20);
  const auto lb = sim::run_surge(surge, pes, pes * 8, /*lb_period=*/10,
                                 "greedyrefine", machine(pes), 1 << 20);
  std::printf("baseline %.3fs  vp8+lb %.3fs  migrations %d\n", base.time_s,
              lb.time_s, lb.migrations);
  EXPECT_LT(lb.time_s, base.time_s);
  EXPECT_GT(lb.migrations, 0);
}

TEST(ClusterSim, AllreduceCouplesRanks) {
  // With a per-step allreduce, a single slow rank drags every step.
  auto run = [&](bool allreduce) {
    sim::ClusterSim::Config cfg;
    cfg.pes = 4;
    cfg.vps = 4;
    cfg.steps = 10;
    cfg.machine = machine(4);
    cfg.work_us = [](int rank, int) { return rank == 0 ? 400.0 : 20.0; };
    cfg.allreduce_per_step = allreduce;
    return sim::ClusterSim(std::move(cfg)).run().time_s;
  };
  EXPECT_GE(run(true), run(false));
}

TEST(ClusterSim, DeterministicAcrossRuns) {
  const sim::SurgeConfig surge = quick_surge();
  const auto a = sim::run_surge(surge, 4, 16, 10, "greedyrefine", machine(4),
                                1 << 20);
  const auto b = sim::run_surge(surge, 4, 16, 10, "greedyrefine", machine(4),
                                1 << 20);
  EXPECT_DOUBLE_EQ(a.time_s, b.time_s);
  EXPECT_EQ(a.migrations, b.migrations);
}
