// Tests for the trace-driven L1I cache simulator and the §4.5 experiment
// harness.

#include <gtest/gtest.h>

#include "sim/icache.hpp"
#include "util/error.hpp"

using namespace apv;

namespace {
sim::CacheConfig tiny_cache() {
  sim::CacheConfig c;
  c.size_bytes = 1024;  // 4 sets x 4 ways x 64 B
  c.line_bytes = 64;
  c.ways = 4;
  c.name = "tiny";
  return c;
}
}  // namespace

TEST(CacheSim, ColdMissesThenHits) {
  sim::CacheSim sim(tiny_cache());
  for (int rep = 0; rep < 3; ++rep) {
    for (std::uintptr_t a = 0; a < 512; a += 64) sim.access(a);
  }
  // 8 lines fit in 16-line cache: 8 compulsory misses, everything else hits.
  EXPECT_EQ(sim.misses(), 8u);
  EXPECT_EQ(sim.accesses(), 24u);
}

TEST(CacheSim, LruEvictionExact) {
  sim::CacheSim sim(tiny_cache());  // 4 ways per set
  // 5 distinct lines in the same set (stride = sets * line = 256).
  for (std::uintptr_t i = 0; i < 5; ++i) sim.access(i * 256);
  EXPECT_EQ(sim.misses(), 5u);
  // Line 0 was LRU and is gone; line 1 is still resident.
  sim.access(1 * 256);
  EXPECT_EQ(sim.misses(), 5u);
  sim.access(0 * 256);
  EXPECT_EQ(sim.misses(), 6u);
}

TEST(CacheSim, ResetClearsEverything) {
  sim::CacheSim sim(tiny_cache());
  sim.access(0);
  sim.reset();
  EXPECT_EQ(sim.accesses(), 0u);
  sim.access(0);
  EXPECT_EQ(sim.misses(), 1u);  // cold again
}

TEST(CacheSim, PrefetchCutsSequentialMisses) {
  sim::CacheConfig plain = tiny_cache();
  sim::CacheConfig pref = tiny_cache();
  pref.next_line_prefetch = true;
  sim::CacheSim a(plain), b(pref);
  // A long sequential sweep larger than the cache.
  for (std::uintptr_t addr = 0; addr < 64 * 1024; addr += 64) {
    a.access(addr);
    b.access(addr);
  }
  EXPECT_LT(b.misses(), a.misses() / 2);
}

TEST(CacheSim, BadGeometryRejected) {
  sim::CacheConfig c = tiny_cache();
  c.size_bytes = 1000;  // sets not a power of two
  EXPECT_THROW(sim::CacheSim{c}, util::ApvError);
}

TEST(IcacheExperiment, DeterministicAcrossRuns) {
  const sim::CacheConfig cache = sim::bridges2_l1i();
  sim::IcacheExperiment exp;
  const auto a = sim::run_icache_experiment(cache, exp);
  const auto b = sim::run_icache_experiment(cache, exp);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.accesses, b.accesses);
  EXPECT_GT(a.accesses, 0u);
}

TEST(IcacheExperiment, PerRankCodeTouchesMoreDistinctLines) {
  const sim::CacheConfig cache = sim::bridges2_l1i();
  sim::IcacheExperiment exp;
  exp.per_rank_code = false;
  const auto shared = sim::run_icache_experiment(cache, exp);
  exp.per_rank_code = true;
  const auto dup = sim::run_icache_experiment(cache, exp);
  EXPECT_EQ(shared.accesses, dup.accesses)
      << "same trace, only placement differs";
  // In a pure capacity/LRU model, duplicated code can only add misses.
  EXPECT_GE(dup.misses, shared.misses);
}

TEST(IcacheExperiment, MachinePresetsDiffer) {
  EXPECT_FALSE(sim::bridges2_l1i().next_line_prefetch);
  EXPECT_TRUE(sim::stampede2_l1i().next_line_prefetch);
  EXPECT_EQ(sim::bridges2_l1i().num_sets(), 64u);
}
