#include <gtest/gtest.h>
#include "ult/scheduler.hpp"
#include "isomalloc/arena.hpp"
#include "isomalloc/slot_heap.hpp"
#include <vector>

using namespace apv;

struct PingPong {
  ult::Scheduler* sched;
  int count = 0;
};

static void body(void* arg) {
  auto* pp = static_cast<PingPong*>(arg);
  for (int i = 0; i < 1000; ++i) {
    pp->count++;
    pp->sched->yield();
  }
}

TEST(Smoke, UltPingPong) {
  ult::Scheduler sched;
  std::vector<char> s1(65536), s2(65536);
  PingPong pp{&sched, 0};
  ult::Ult a(1, body, &pp, s1.data(), s1.size());
  ult::Ult b(2, body, &pp, s2.data(), s2.size());
  sched.ready(&a);
  sched.ready(&b);
  sched.run_until_quiescent();
  EXPECT_EQ(pp.count, 2000);
  EXPECT_EQ(a.state(), ult::UltState::Done);
}

TEST(Smoke, SlotHeap) {
  iso::IsoArena arena({.slot_size = 1 << 20, .max_slots = 4});
  auto slot = arena.acquire_slot();
  auto* h = iso::SlotHeap::format(arena.slot_base(slot), arena.slot_size());
  void* p = h->alloc(100);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(h->check_integrity());
  h->free(p);
  EXPECT_TRUE(h->check_integrity());
  arena.release_slot(slot);
}
