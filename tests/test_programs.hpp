// Shared emulated "MPI programs" used across tests and benches. Each is a
// ProgramImage builder plus native entry functions, mirroring the C codes
// the paper privatizes (Figure 2's hello world, a constructor-heavy C++
// code, a Jacobi-style compute kernel).
#pragma once

#include <cstdint>

#include "image/image.hpp"
#include "image/instance.hpp"
#include "mpi/env.hpp"

namespace apv::test {

// ---------------------------------------------------------------------------
// hello: the paper's Figure 2 program. Each rank writes its rank number to
// the mutable global `my_rank`, barriers, and returns the value it then
// observes. Unprivatized, every co-located rank observes the last writer
// (Figure 3's bug); privatized, each observes its own number.

inline void* hello_main(void* arg) {
  auto* env = static_cast<mpi::Env*>(arg);
  auto my_rank = env->global<int>("my_rank");
  auto num_ranks = env->global<int>("num_ranks");
  my_rank.set(env->rank());
  num_ranks.set(env->size());
  env->barrier();
  return reinterpret_cast<void*>(static_cast<std::intptr_t>(my_rank.get()));
}

/// `tag_tls` marks my_rank/num_ranks thread_local, the manual annotation
/// TLSglobals requires; the other methods privatize untagged globals
/// automatically.
inline img::ProgramImage build_hello(std::size_t code_size = 0,
                                     bool tag_tls = false) {
  img::ImageBuilder b("hello");
  b.add_global<int>("my_rank", -1, {.is_tls = tag_tls});
  b.add_global<int>("num_ranks", -1, {.is_tls = tag_tls});
  b.add_function("mpi_main", &hello_main);
  if (code_size > 0) b.set_code_size(code_size);
  return b.build();
}

// ---------------------------------------------------------------------------
// kinds: one variable of every privatization-relevant kind. Each rank
// writes rank-distinct values, barriers, and reports what it reads back as
// a bitmask of which variables were correctly private.

inline void* kinds_main(void* arg) {
  auto* env = static_cast<mpi::Env*>(arg);
  const int me = env->rank();
  auto mutable_global = env->global<int>("mutable_global");
  auto static_var = env->global<int>("static_var");
  auto tls_var = env->global<int>("tls_var");
  auto const_var = env->global<int>("const_answer");

  mutable_global.set(me + 100);
  static_var.set(me + 200);
  tls_var.set(me + 300);
  env->barrier();

  std::intptr_t ok = 0;
  if (mutable_global.get() == me + 100) ok |= 1;
  if (static_var.get() == me + 200) ok |= 2;
  if (tls_var.get() == me + 300) ok |= 4;
  if (const_var.get() == 42) ok |= 8;
  return reinterpret_cast<void*>(ok);
}

inline img::ProgramImage build_kinds() {
  img::ImageBuilder b("kinds");
  b.add_global<int>("mutable_global", 0);
  b.add_global<int>("static_var", 0, {.is_static = true});
  b.add_global<int>("tls_var", 0, {.is_tls = true});
  b.add_global<int>("const_answer", 42, {.is_const = true});
  b.add_function("mpi_main", &kinds_main);
  return b.build();
}

// Bits of kinds_main's result.
inline constexpr std::intptr_t kKindsGlobalOk = 1;
inline constexpr std::intptr_t kKindsStaticOk = 2;
inline constexpr std::intptr_t kKindsTlsOk = 4;
inline constexpr std::intptr_t kKindsConstOk = 8;

// ---------------------------------------------------------------------------
// ctorheavy: a C++-style program whose static constructor heap-allocates a
// table, stores the pointer in a global, fills it with data including a
// function pointer and a pointer back into the data segment — the exact
// startup shapes that force PIEglobals' fix-up pass (paper §3.3).

inline void* ctor_callback(void* x) {
  return reinterpret_cast<void*>(reinterpret_cast<std::intptr_t>(x) * 2 + 1);
}

struct CtorTable {
  void* fn;          // emulated function pointer (into the code segment)
  void* self_global; // pointer to a data-segment global
  std::int64_t payload[8];
};

inline void ctorheavy_ctor(img::CtorContext& ctx) {
  auto* table = static_cast<CtorTable*>(ctx.ctor_malloc(sizeof(CtorTable)));
  ctx.set_ptr("table_ptr", table);
  // Interior pointers recorded through the logging API (exact-fixup mode);
  // the scan mode must find them without the records.
  ctx.write_heap_ptr(table, offsetof(CtorTable, fn),
                     ctx.func_ptr("callback"));
  ctx.write_heap_ptr(
      table, offsetof(CtorTable, self_global),
      ctx.instance().var_addr(ctx.instance().image().var_id("counter")));
  for (int i = 0; i < 8; ++i) table->payload[i] = 1000 + i;
  ctx.set<int>("counter", 7);
}

/// Each rank bumps the counter *through the constructor-written pointer
/// chain* (table_ptr->self_global) and calls the function pointer stored in
/// the heap table. Verifies the whole fix-up transitive closure.
inline void* ctorheavy_main(void* arg) {
  auto* env = static_cast<mpi::Env*>(arg);
  const int me = env->rank();
  auto table_ptr = env->global<CtorTable*>("table_ptr");

  CtorTable* table = table_ptr.get();
  auto* counter = static_cast<int*>(table->self_global);
  *counter += me + 1;  // through the data-segment pointer
  env->barrier();

  std::intptr_t result = *counter;  // privatized: 7 + me + 1
  // Call through the heap-resident function pointer, localized to this
  // rank's code copy by the runtime's translation.
  auto op = env->op_create_from_ptr(table->fn);
  (void)op;  // creation validates translatability
  result = result * 10000 + table->payload[me % 8];
  return reinterpret_cast<void*>(result);
}

inline img::ProgramImage build_ctorheavy() {
  img::ImageBuilder b("ctorheavy");
  b.add_global<CtorTable*>("table_ptr", nullptr);
  b.add_global<int>("counter", 0);
  b.add_function("mpi_main", &ctorheavy_main);
  b.add_function("callback", &ctor_callback);
  b.add_constructor(&ctorheavy_ctor);
  return b.build();
}

}  // namespace apv::test
