// Unit tests for the user-level thread substrate: raw context switching on
// both backends, scheduler semantics, and switch hooks.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ult/scheduler.hpp"
#include "util/error.hpp"

using namespace apv;
using ult::ContextBackend;

namespace {

std::vector<ContextBackend> available_backends() {
  std::vector<ContextBackend> out;
  if (ult::context_backend_available(ContextBackend::Asm))
    out.push_back(ContextBackend::Asm);
  out.push_back(ContextBackend::Ucontext);
  return out;
}

}  // namespace

class ContextPerBackend : public ::testing::TestWithParam<ContextBackend> {};

namespace {
struct PingState {
  ult::Context main_ctx;
  ult::Context ult_ctx;
  int step = 0;
};

void ping_entry(void* arg) {
  auto* st = static_cast<PingState*>(arg);
  st->step = 1;
  st->ult_ctx.switch_to(st->main_ctx);
  st->step = 3;
  st->ult_ctx.switch_to(st->main_ctx);
  abort();  // never resumed again
}
}  // namespace

TEST_P(ContextPerBackend, RawSwitchPreservesControlFlow) {
  std::vector<char> stack(64 << 10);
  PingState st;
  st.main_ctx.create_native(GetParam());
  st.ult_ctx.create(stack.data(), stack.size(), &ping_entry, &st, GetParam());
  EXPECT_EQ(st.step, 0);
  st.main_ctx.switch_to(st.ult_ctx);
  EXPECT_EQ(st.step, 1);
  st.step = 2;
  st.main_ctx.switch_to(st.ult_ctx);
  EXPECT_EQ(st.step, 3);
}

namespace {
struct FpState {
  ult::Context main_ctx;
  ult::Context ult_ctx;
  double result = 0.0;
};

void fp_entry(void* arg) {
  auto* st = static_cast<FpState*>(arg);
  // Keep FP values live across a switch: callee-saved FP state and the
  // stack must survive.
  double acc = 1.5;
  for (int i = 0; i < 10; ++i) {
    acc = acc * 1.25 + 0.125;
    st->ult_ctx.switch_to(st->main_ctx);
  }
  st->result = acc;
  st->ult_ctx.switch_to(st->main_ctx);
  abort();
}
}  // namespace

TEST_P(ContextPerBackend, FloatingPointSurvivesSwitches) {
  std::vector<char> stack(64 << 10);
  FpState st;
  st.main_ctx.create_native(GetParam());
  st.ult_ctx.create(stack.data(), stack.size(), &fp_entry, &st, GetParam());
  for (int i = 0; i < 11; ++i) st.main_ctx.switch_to(st.ult_ctx);
  double expect = 1.5;
  for (int i = 0; i < 10; ++i) expect = expect * 1.25 + 0.125;
  EXPECT_DOUBLE_EQ(st.result, expect);
}

TEST_P(ContextPerBackend, TinyStackRejected) {
  ult::Context ctx;
  char small[128];
  EXPECT_THROW(
      ctx.create(small, sizeof small, [](void*) {}, nullptr, GetParam()),
      util::ApvError);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, ContextPerBackend, ::testing::ValuesIn(available_backends()),
    [](const ::testing::TestParamInfo<ContextBackend>& info) {
      return ult::context_backend_name(info.param);
    });

TEST(Context, MixedBackendSwitchRejected) {
  if (!ult::context_backend_available(ContextBackend::Asm)) GTEST_SKIP();
  ult::Context a, b;
  a.create_native(ContextBackend::Asm);
  b.create_native(ContextBackend::Ucontext);
  EXPECT_THROW(a.switch_to(b), util::ApvError);
}

// ---------------------------------------------------------------------------
// Scheduler

namespace {
struct Recorder {
  std::string log;
};

void appender_a(void* arg) {
  auto* r = static_cast<Recorder*>(arg);
  r->log += 'a';
  ult::current_scheduler()->yield();
  r->log += 'A';
}

void appender_b(void* arg) {
  auto* r = static_cast<Recorder*>(arg);
  r->log += 'b';
  ult::current_scheduler()->yield();
  r->log += 'B';
}
}  // namespace

TEST(Scheduler, FifoInterleaving) {
  ult::Scheduler sched;
  std::vector<char> s1(32 << 10), s2(32 << 10);
  Recorder rec;
  ult::Ult a(1, &appender_a, &rec, s1.data(), s1.size());
  ult::Ult b(2, &appender_b, &rec, s2.data(), s2.size());
  sched.ready(&a);
  sched.ready(&b);
  sched.run_until_quiescent();
  EXPECT_EQ(rec.log, "abAB");
  EXPECT_EQ(a.state(), ult::UltState::Done);
  EXPECT_EQ(b.state(), ult::UltState::Done);
}

namespace {
void suspender(void* arg) {
  auto* r = static_cast<Recorder*>(arg);
  r->log += 's';
  ult::current_scheduler()->suspend();
  r->log += 'S';
}
}  // namespace

TEST(Scheduler, SuspendNeedsExplicitResume) {
  ult::Scheduler sched;
  std::vector<char> s1(32 << 10);
  Recorder rec;
  ult::Ult t(1, &suspender, &rec, s1.data(), s1.size());
  sched.ready(&t);
  sched.run_until_quiescent();
  EXPECT_EQ(rec.log, "s");
  EXPECT_EQ(t.state(), ult::UltState::Blocked);
  sched.ready(&t);
  sched.run_until_quiescent();
  EXPECT_EQ(rec.log, "sS");
  EXPECT_EQ(t.state(), ult::UltState::Done);
}

TEST(Scheduler, RunOneReturnsFalseWhenEmpty) {
  ult::Scheduler sched;
  EXPECT_FALSE(sched.run_one());
  EXPECT_EQ(sched.ready_count(), 0u);
}

TEST(Scheduler, SwitchHooksSeeNextUlt) {
  ult::Scheduler sched;
  std::vector<char> s1(32 << 10);
  Recorder rec;
  ult::Ult t(7, &suspender, &rec, s1.data(), s1.size());
  std::vector<ult::Ult::Id> seen;
  const int hook = sched.add_switch_hook([&](ult::Ult* next) {
    if (next != nullptr) seen.push_back(next->id());
  });
  sched.ready(&t);
  sched.run_until_quiescent();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 7u);
  sched.remove_switch_hook(hook);
  sched.ready(&t);
  sched.run_until_quiescent();
  EXPECT_EQ(seen.size(), 1u);  // hook removed, no more records
}

TEST(Scheduler, SwitchCountAdvances) {
  ult::Scheduler sched;
  std::vector<char> s1(32 << 10);
  Recorder rec;
  ult::Ult a(1, &appender_a, &rec, s1.data(), s1.size());
  sched.ready(&a);
  const auto before = sched.switch_count();
  sched.run_until_quiescent();
  EXPECT_EQ(sched.switch_count(), before + 2);  // initial run + post-yield
}

TEST(Scheduler, UltSideCallsOutsideUltThrow) {
  ult::Scheduler sched;
  EXPECT_THROW(sched.yield(), util::ApvError);
  EXPECT_THROW(sched.suspend(), util::ApvError);
}

TEST(Scheduler, IdleWaitTimesOut) {
  ult::Scheduler sched;
  EXPECT_FALSE(sched.idle_wait([] { return false; }, 1000));
}

TEST(Scheduler, IdleWaitSeesStopPredicate) {
  ult::Scheduler sched;
  EXPECT_FALSE(sched.idle_wait([] { return true; }, 1000000));
}

TEST(Scheduler, CurrentUltVisibleFromInside) {
  ult::Scheduler sched;
  std::vector<char> s1(32 << 10);
  static ult::Ult* observed;
  observed = nullptr;
  ult::Ult t(
      9, [](void*) { observed = ult::current_ult(); }, nullptr, s1.data(),
      s1.size());
  sched.ready(&t);
  sched.run_until_quiescent();
  EXPECT_EQ(observed, &t);
  EXPECT_EQ(ult::current_ult(), nullptr);
}

// ---------------------------------------------------------------------------
// Multi-lane runqueue + preemption

namespace {
// A body that appends one character and exits; the char rides in the low
// byte of the arg pointer's pointee.
struct Tagged {
  Recorder* rec;
  char tag;
};

void tag_once(void* arg) {
  auto* t = static_cast<Tagged*>(arg);
  t->rec->log += t->tag;
}
}  // namespace

TEST(SchedulerLanes, HighBeforeNormalBeforeBulk) {
  ult::Scheduler sched;
  Recorder rec;
  std::vector<std::vector<char>> stacks(3, std::vector<char>(32 << 10));
  Tagged th{&rec, 'h'}, tn{&rec, 'n'}, tb{&rec, 'b'};
  ult::Ult b(1, &tag_once, &tb, stacks[0].data(), stacks[0].size());
  ult::Ult n(2, &tag_once, &tn, stacks[1].data(), stacks[1].size());
  ult::Ult h(3, &tag_once, &th, stacks[2].data(), stacks[2].size());
  // Enqueue lowest-priority first: lane order must override arrival order.
  sched.ready(&b, ult::Lane::Bulk);
  sched.ready(&n, ult::Lane::Normal);
  sched.ready(&h, ult::Lane::High);
  sched.run_until_quiescent();
  EXPECT_EQ(rec.log, "hnb");
  EXPECT_EQ(sched.lane_dispatches(ult::Lane::High), 1u);
  EXPECT_EQ(sched.lane_dispatches(ult::Lane::Normal), 1u);
  EXPECT_EQ(sched.lane_dispatches(ult::Lane::Bulk), 1u);
}

TEST(SchedulerLanes, FifoConfigCollapsesLanes) {
  ult::Scheduler::Config cfg;
  cfg.lanes = false;
  ult::Scheduler sched(ult::default_context_backend(), cfg);
  Recorder rec;
  std::vector<std::vector<char>> stacks(3, std::vector<char>(32 << 10));
  Tagged th{&rec, 'h'}, tn{&rec, 'n'}, tb{&rec, 'b'};
  ult::Ult b(1, &tag_once, &tb, stacks[0].data(), stacks[0].size());
  ult::Ult n(2, &tag_once, &tn, stacks[1].data(), stacks[1].size());
  ult::Ult h(3, &tag_once, &th, stacks[2].data(), stacks[2].size());
  sched.ready(&b, ult::Lane::Bulk);
  sched.ready(&n, ult::Lane::Normal);
  sched.ready(&h, ult::Lane::High);
  sched.run_until_quiescent();
  // Seed-exact FIFO: arrival order wins, hints ignored, everything counts
  // as a Normal-lane dispatch.
  EXPECT_EQ(rec.log, "bnh");
  EXPECT_EQ(sched.lane_dispatches(ult::Lane::High), 0u);
  EXPECT_EQ(sched.lane_dispatches(ult::Lane::Normal), 3u);
  EXPECT_EQ(sched.lane_dispatches(ult::Lane::Bulk), 0u);
}

TEST(SchedulerLanes, StarvationEscapeYieldsToLowerLane) {
  ult::Scheduler::Config cfg;
  cfg.starve_limit = 2;
  ult::Scheduler sched(ult::default_context_backend(), cfg);
  Recorder rec;
  constexpr int kHigh = 5;
  std::vector<std::vector<char>> stacks(kHigh + 1,
                                        std::vector<char>(32 << 10));
  Tagged th{&rec, 'h'}, tn{&rec, 'n'};
  std::vector<std::unique_ptr<ult::Ult>> highs;
  for (int i = 0; i < kHigh; ++i) {
    highs.push_back(std::make_unique<ult::Ult>(
        i + 1, &tag_once, &th, stacks[static_cast<std::size_t>(i)].data(),
        stacks[static_cast<std::size_t>(i)].size()));
  }
  ult::Ult normal(99, &tag_once, &tn, stacks[kHigh].data(),
                  stacks[kHigh].size());
  sched.ready(&normal, ult::Lane::Normal);
  for (auto& u : highs) sched.ready(u.get(), ult::Lane::High);
  sched.run_until_quiescent();
  // After starve_limit consecutive High dispatches the Normal ULT must get
  // a slot — not wait behind the whole High backlog.
  EXPECT_EQ(rec.log, "hhnhhh");
}

TEST(SchedulerLanes, CrossThreadReadyIsFifoAndCounted) {
  ult::Scheduler sched;
  EXPECT_FALSE(sched.run_one());  // binds the owner to this thread
  Recorder rec;
  constexpr int kN = 4;
  std::vector<std::vector<char>> stacks(kN, std::vector<char>(32 << 10));
  Tagged tags[kN] = {{&rec, '0'}, {&rec, '1'}, {&rec, '2'}, {&rec, '3'}};
  std::vector<std::unique_ptr<ult::Ult>> ults;
  for (int i = 0; i < kN; ++i) {
    ults.push_back(std::make_unique<ult::Ult>(
        i, &tag_once, &tags[i], stacks[static_cast<std::size_t>(i)].data(),
        stacks[static_cast<std::size_t>(i)].size()));
  }
  std::thread producer([&] {
    for (auto& u : ults) sched.ready(u.get());
  });
  producer.join();
  EXPECT_EQ(sched.ready_count(), static_cast<std::size_t>(kN));
  EXPECT_EQ(sched.remote_ready_count(), static_cast<std::uint64_t>(kN));
  sched.run_until_quiescent();
  // The MPSC push stack is LIFO internally; the drain must restore FIFO.
  EXPECT_EQ(rec.log, "0123");
}

TEST(SchedulerLanes, UnqueueRemovesWithoutRunning) {
  ult::Scheduler sched;
  Recorder rec;
  std::vector<std::vector<char>> stacks(2, std::vector<char>(32 << 10));
  Tagged ta{&rec, 'a'}, tb{&rec, 'b'};
  ult::Ult a(1, &tag_once, &ta, stacks[0].data(), stacks[0].size());
  ult::Ult b(2, &tag_once, &tb, stacks[1].data(), stacks[1].size());
  sched.ready(&a);
  sched.ready(&b, ult::Lane::Bulk);
  EXPECT_EQ(sched.ready_count(), 2u);
  EXPECT_TRUE(sched.unqueue(&b));
  EXPECT_FALSE(sched.unqueue(&b));  // already gone
  EXPECT_EQ(sched.ready_count(), 1u);
  sched.run_until_quiescent();
  EXPECT_EQ(rec.log, "a");
  EXPECT_EQ(b.state(), ult::UltState::Ready);  // untouched, still runnable
  sched.ready(&b);
  sched.run_until_quiescent();
  EXPECT_EQ(rec.log, "ab");
}

namespace {
void preempt_hog(void* arg) {
  auto* r = static_cast<Recorder*>(arg);
  r->log += 'H';
  // With quantum_us=0 the very first preempt point is over-quantum; the
  // scheduler must demote us behind the queued Normal ULT.
  ult::current_scheduler()->preempt_point();
  r->log += 'h';
}
}  // namespace

TEST(SchedulerPreempt, OverQuantumHogYieldsToWaiter) {
  ult::Scheduler::Config cfg;
  cfg.preempt = true;
  cfg.quantum_us = 0;
  ult::Scheduler sched(ult::default_context_backend(), cfg);
  Recorder rec;
  std::vector<std::vector<char>> stacks(2, std::vector<char>(32 << 10));
  Tagged tv{&rec, 'v'};
  ult::Ult hog(1, &preempt_hog, &rec, stacks[0].data(), stacks[0].size());
  ult::Ult victim(2, &tag_once, &tv, stacks[1].data(), stacks[1].size());
  sched.ready(&hog);
  sched.ready(&victim);
  sched.run_until_quiescent();
  EXPECT_EQ(rec.log, "Hvh");
  EXPECT_GE(sched.preempt_count(), 1u);
}

TEST(SchedulerPreempt, OverrunWithEmptyQueueKeepsRunning) {
  ult::Scheduler::Config cfg;
  cfg.preempt = true;
  cfg.quantum_us = 0;
  ult::Scheduler sched(ult::default_context_backend(), cfg);
  Recorder rec;
  std::vector<char> s1(32 << 10);
  ult::Ult hog(1, &preempt_hog, &rec, s1.data(), s1.size());
  sched.ready(&hog);
  sched.run_until_quiescent();
  // Nobody else is ready: the hog keeps its slice uninterrupted (an
  // overrun is recorded, no preemption).
  EXPECT_EQ(rec.log, "Hh");
  EXPECT_EQ(sched.preempt_count(), 0u);
  EXPECT_GE(sched.overrun_count(), 1u);
}

TEST(SchedulerPreempt, DisarmedPointIsNoop) {
  ult::Scheduler sched;  // default config: preempt off
  Recorder rec;
  std::vector<std::vector<char>> stacks(2, std::vector<char>(32 << 10));
  Tagged tv{&rec, 'v'};
  ult::Ult hog(1, &preempt_hog, &rec, stacks[0].data(), stacks[0].size());
  ult::Ult victim(2, &tag_once, &tv, stacks[1].data(), stacks[1].size());
  sched.ready(&hog);
  sched.ready(&victim);
  sched.run_until_quiescent();
  EXPECT_EQ(rec.log, "Hhv");  // hog ran to completion despite the point
  EXPECT_EQ(sched.preempt_count(), 0u);
}

TEST(Scheduler, ManyUltsLongRun) {
  ult::Scheduler sched;
  constexpr int kUlts = 32;
  constexpr int kYields = 200;
  static int counter;
  counter = 0;
  struct Body {
    static void run(void*) {
      for (int i = 0; i < kYields; ++i) {
        ++counter;
        ult::current_scheduler()->yield();
      }
    }
  };
  std::vector<std::vector<char>> stacks(kUlts, std::vector<char>(32 << 10));
  std::vector<std::unique_ptr<ult::Ult>> ults;
  for (int i = 0; i < kUlts; ++i) {
    ults.push_back(std::make_unique<ult::Ult>(
        i, &Body::run, nullptr, stacks[i].data(), stacks[i].size()));
    sched.ready(ults.back().get());
  }
  sched.run_until_quiescent();
  EXPECT_EQ(counter, kUlts * kYields);
}
