// Unit tests for the util substrate: statistics, options, byte buffers,
// alignment helpers, RNG.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/bytes.hpp"
#include "util/error.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace apv::util;

TEST(Stats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Stats, MatchesNaiveComputation) {
  SplitMix64 rng(42);
  RunningStats s;
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_range(-50.0, 150.0);
    xs.push_back(x);
    s.add(x);
  }
  double sum = 0.0;
  for (double x : xs) sum += x;
  const double mean = sum / xs.size();
  double m2 = 0.0;
  for (double x : xs) m2 += (x - mean) * (x - mean);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), m2 / (xs.size() - 1), 1e-6);
  EXPECT_EQ(s.count(), xs.size());
}

TEST(Stats, MinMaxTracking) {
  RunningStats s;
  s.add(3.0);
  s.add(-1.0);
  s.add(7.0);
  EXPECT_EQ(s.min(), -1.0);
  EXPECT_EQ(s.max(), 7.0);
  EXPECT_EQ(s.sum(), 9.0);
}

TEST(Stats, MergeEqualsSequential) {
  SplitMix64 rng(7);
  RunningStats all, a, b;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.next_double();
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(Stats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 5.0);
}

TEST(Stats, QuantileInterpolation) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_NEAR(quantile(xs, 0.25), 2.0, 1e-12);
  EXPECT_EQ(quantile({}, 0.5), 0.0);
}

TEST(Stats, ImbalanceRatio) {
  EXPECT_EQ(imbalance_ratio({}), 1.0);
  EXPECT_EQ(imbalance_ratio({0.0, 0.0}), 1.0);
  EXPECT_NEAR(imbalance_ratio({1.0, 1.0, 1.0, 1.0}), 1.0, 1e-12);
  EXPECT_NEAR(imbalance_ratio({4.0, 0.0, 0.0, 0.0}), 4.0, 1e-12);
}

TEST(Options, ParseAndFetch) {
  const char* argv[] = {"net.latency_us=2.5", "pie.fixup=exact",
                        "loader.patched_glibc=true", "n=42"};
  Options opts = Options::parse(4, argv);
  EXPECT_DOUBLE_EQ(opts.get_double("net.latency_us", 0.0), 2.5);
  EXPECT_EQ(opts.get_string("pie.fixup", ""), "exact");
  EXPECT_TRUE(opts.get_bool("loader.patched_glibc", false));
  EXPECT_EQ(opts.get_int("n", 0), 42);
}

TEST(Options, DefaultsWhenMissing) {
  Options opts;
  EXPECT_EQ(opts.get_int("missing", -7), -7);
  EXPECT_EQ(opts.get_string("missing", "d"), "d");
  EXPECT_FALSE(opts.has("missing"));
}

TEST(Options, BoolSpellings) {
  Options opts;
  for (const char* v : {"1", "true", "yes", "on"}) {
    opts.set("k", v);
    EXPECT_TRUE(opts.get_bool("k", false)) << v;
  }
  for (const char* v : {"0", "false", "off", "banana"}) {
    opts.set("k", v);
    EXPECT_FALSE(opts.get_bool("k", true)) << v;
  }
}

TEST(Options, MalformedTokenThrows) {
  const char* argv[] = {"novalue"};
  EXPECT_THROW(Options::parse(1, argv), ApvError);
  const char* argv2[] = {"=x"};
  EXPECT_THROW(Options::parse(1, argv2), ApvError);
}

TEST(Options, SettersRoundTrip) {
  Options opts;
  opts.set_int("i", -12);
  opts.set_double("d", 0.125);
  opts.set_bool("b", true);
  EXPECT_EQ(opts.get_int("i", 0), -12);
  EXPECT_DOUBLE_EQ(opts.get_double("d", 0), 0.125);
  EXPECT_TRUE(opts.get_bool("b", false));
}

TEST(Bytes, AlignUp) {
  EXPECT_EQ(align_up(0, 16), 0u);
  EXPECT_EQ(align_up(1, 16), 16u);
  EXPECT_EQ(align_up(16, 16), 16u);
  EXPECT_EQ(align_up(17, 16), 32u);
  EXPECT_EQ(align_up(4095, 4096), 4096u);
}

TEST(Bytes, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(48));
}

TEST(Bytes, ByteBufferRoundTrip) {
  ByteBuffer buf;
  buf.put<std::uint32_t>(0xdeadbeef);
  buf.put<double>(3.25);
  const char text[] = "hello";
  buf.put_bytes(text, sizeof text);
  buf.rewind();
  EXPECT_EQ(buf.get<std::uint32_t>(), 0xdeadbeefu);
  EXPECT_EQ(buf.get<double>(), 3.25);
  char out[sizeof text];
  buf.get_bytes(out, sizeof out);
  EXPECT_STREQ(out, "hello");
  EXPECT_EQ(buf.remaining(), 0u);
}

TEST(Bytes, ByteBufferClear) {
  ByteBuffer buf;
  buf.put<int>(1);
  buf.clear();
  EXPECT_EQ(buf.size(), 0u);
}

TEST(Rng, Deterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, BoundsRespected) {
  SplitMix64 rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    const double r = rng.next_range(2.0, 5.0);
    EXPECT_GE(r, 2.0);
    EXPECT_LT(r, 5.0);
  }
}

TEST(Error, CodeNamesAndRequire) {
  EXPECT_STREQ(error_code_name(ErrorCode::NotSupported), "NotSupported");
  EXPECT_STREQ(error_code_name(ErrorCode::MigrationRefused),
               "MigrationRefused");
  try {
    require(false, ErrorCode::LimitExceeded, "the detail");
    FAIL() << "require did not throw";
  } catch (const ApvError& e) {
    EXPECT_EQ(e.code(), ErrorCode::LimitExceeded);
    EXPECT_NE(std::string(e.what()).find("the detail"), std::string::npos);
  }
  EXPECT_NO_THROW(require(true, ErrorCode::Internal, "unused"));
}
