// apv_launch — same-host process launcher/rendezvous for the shm transport.
//
//   apv_launch -n <procs> [-j <job>] [--timeout-s <T>] -- <prog> [args...]
//
// Spawns <procs> copies of <prog> with the shm transport contract in their
// environment (APV_SHM_PROCS, APV_SHM_PROC, APV_SHM_JOB); process 0 creates
// the shared segment, the rest attach, and the transport's rendezvous
// barrier holds everyone until the whole job is up. The launcher then:
//  - waits for all children; exits with the first nonzero status seen,
//  - kills the remaining children when one fails or the timeout fires
//    (surviving processes would otherwise block forever on a collective
//    peer that no longer exists — the FT tests kill *their own* children
//    deliberately and don't go through the launcher's fail-fast),
//  - unlinks the segment afterwards, so a crashed job cannot poison the
//    next run's rendezvous.

#include <signal.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "comm/transport.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s -n <procs> [-j <job>] [--timeout-s <T>] -- <prog> "
               "[args...]\n",
               argv0);
  std::exit(2);
}

volatile sig_atomic_t g_signaled = 0;
void on_signal(int) { g_signaled = 1; }

}  // namespace

int main(int argc, char** argv) {
  int procs = 0;
  std::string job;
  long timeout_s = 120;
  int i = 1;
  for (; i < argc; ++i) {
    if (std::strcmp(argv[i], "-n") == 0 && i + 1 < argc) {
      procs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "-j") == 0 && i + 1 < argc) {
      job = argv[++i];
    } else if (std::strcmp(argv[i], "--timeout-s") == 0 && i + 1 < argc) {
      timeout_s = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--") == 0) {
      ++i;
      break;
    } else {
      usage(argv[0]);
    }
  }
  if (procs < 1 || i >= argc) usage(argv[0]);
  if (job.empty()) {
    job = "job" + std::to_string(static_cast<long>(getpid())) + "_" +
          std::to_string(static_cast<long>(time(nullptr)));
  }
  const std::string seg = apv::comm::shm_segment_name(job);
  shm_unlink(seg.c_str());  // a stale segment would confuse the rendezvous

  signal(SIGINT, on_signal);
  signal(SIGTERM, on_signal);

  std::vector<pid_t> pids;
  pids.reserve(static_cast<std::size_t>(procs));
  for (int p = 0; p < procs; ++p) {
    const pid_t pid = fork();
    if (pid < 0) {
      std::perror("fork");
      for (pid_t c : pids) kill(c, SIGKILL);
      shm_unlink(seg.c_str());
      return 1;
    }
    if (pid == 0) {
      setenv("APV_SHM_PROCS", std::to_string(procs).c_str(), 1);
      setenv("APV_SHM_PROC", std::to_string(p).c_str(), 1);
      setenv("APV_SHM_JOB", job.c_str(), 1);
      execvp(argv[i], &argv[i]);
      std::perror("execvp");
      _exit(127);
    }
    pids.push_back(pid);
  }

  const time_t deadline = time(nullptr) + timeout_s;
  int exit_code = 0;
  int remaining = procs;
  bool killed = false;
  while (remaining > 0) {
    int status = 0;
    const pid_t done = waitpid(-1, &status, WNOHANG);
    if (done > 0) {
      --remaining;
      int code = 0;
      if (WIFEXITED(status)) code = WEXITSTATUS(status);
      if (WIFSIGNALED(status)) code = 128 + WTERMSIG(status);
      if (code != 0 && exit_code == 0) {
        exit_code = code;
        std::fprintf(stderr, "apv_launch: pid %ld failed (%d), killing job\n",
                     static_cast<long>(done), code);
      }
      continue;
    }
    const bool expired = time(nullptr) >= deadline;
    if ((exit_code != 0 || g_signaled || expired) && !killed) {
      killed = true;
      if (expired && exit_code == 0) {
        exit_code = 124;
        std::fprintf(stderr, "apv_launch: timeout after %lds, killing job\n",
                     timeout_s);
      }
      if (g_signaled && exit_code == 0) exit_code = 130;
      for (pid_t c : pids) kill(c, SIGKILL);
    }
    struct timespec ts = {0, 20 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  shm_unlink(seg.c_str());
  return exit_code;
}
