// Corpus: mutex scopes spanning suspension-legal calls. A rank that
// switches out holding a mutex can deadlock its whole PE (every co-located
// rank shares the OS thread). NOT compiled; consumed by `apv-lint
// --self-test`.

#include <mutex>

namespace app {

inline std::mutex& table_mutex();
struct Env {
  void barrier();
  void send(const void* b, int n, int dt, int dst, int tag);
  void compute(double s);
};

inline void bad_guard(Env* env) {
  std::lock_guard<std::mutex> lock(table_mutex());
  env->barrier();  // LINT[lock-across-suspend]
}

inline void bad_unique(Env* env, const int* buf) {
  std::unique_lock<std::mutex> lk(table_mutex());
  env->send(buf, 4, 0, 1, 7);  // LINT[lock-across-suspend]
  lk.unlock();
}

inline void ok_released_before(Env* env) {
  {
    std::lock_guard<std::mutex> lock(table_mutex());
    // critical section only
  }
  env->barrier();  // lock scope already closed: clean
}

inline void ok_no_suspend() {
  std::lock_guard<std::mutex> lock(table_mutex());
  // pure local work under the lock is fine
}

}  // namespace app
