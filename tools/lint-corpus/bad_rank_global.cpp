// Corpus: mutable shared state that rank-global must flag. Each tagged line
// is the Figure 3 bug in one of its shapes — state that co-located virtual
// ranks would silently share. NOT compiled; consumed by `apv-lint
// --self-test`.

#include <cstdint>

int my_rank = -1;  // LINT[rank-global]

namespace app {

int num_ranks;  // LINT[rank-global]
double residual = 0.0;  // LINT[rank-global]
int iteration_counts[8];  // LINT[rank-global]

// Exempt shapes: immutable, annotated, or not state at all.
const int kTableSize = 64;
constexpr double kTolerance = 1e-9;
thread_local int tls_scratch = 0;  // TLSglobals annotation
extern int defined_elsewhere;
static_assert(kTableSize > 0);

struct Config {
  int width = 0;  // member, not file scope
};

inline int helper(int x) { return x + kTableSize; }

void* rank_main(void* arg) {
  static std::int64_t call_count = 0;  // LINT[rank-global]
  static const int kLocalTable = 3;    // const static: fine
  ++call_count;
  (void)arg;
  return nullptr;
}

}  // namespace app
