// Corpus: raw pointers persisted in shm-resident structs. The segment maps
// at a different base address in every process, so any stored pointer is
// only meaningful to the process that wrote it — layouts must be
// offset-addressed (byte offsets from the segment base, rebased through
// ShmView::at<T>()).

#include <atomic>
#include <cstddef>
#include <cstdint>

struct alignas(64) ShmQueueSlot {
  std::uint64_t seq;
  char* name;                                     // LINT[shm-pointer]
  std::atomic<std::uint32_t>* remote_counter;     // LINT[shm-pointer]
  ShmQueueSlot* next = nullptr;                   // LINT[shm-pointer]
  std::atomic<char*> swapped_in;                  // LINT[shm-pointer]
  std::uint64_t next_off;  // offset-addressed link: the portable form
  std::uint8_t pad[2 * 4];  // multiplication in an array bound, no finding
};

struct ShmDirectory {
  std::uint64_t entries_off;
  std::uint32_t entry_count;
  // Member functions may traffic in pointers freely: they compute
  // process-local addresses at call time instead of persisting them.
  std::byte* entry_base(std::byte* segment) { return segment + entries_off; }
};

// Process-local handles are exempt via suppression: this mirrors
// ShmView::base, which every process re-establishes from its own mmap.
struct ShmMappingHandle {
  std::byte* base = nullptr;  // apv-lint: allow(shm-pointer)
  std::uint64_t bytes = 0;
};

// Not shm-resident (no Shm prefix): pointers are process-private by
// construction and legal.
struct RingCursorCache {
  std::uint64_t* head_shadow;
  std::uint64_t* tail_shadow;
};
