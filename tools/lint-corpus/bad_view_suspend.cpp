// Corpus: raw payload views used across suspension-legal calls. Pooled
// payload buffers may be recycled while the rank is switched out (and under
// ASan the quarantine makes such a use die loudly). NOT compiled; consumed
// by `apv-lint --self-test`.

#include <cstddef>

namespace app {

struct Payload {
  std::byte* data();
  static Payload view(const Payload& parent, std::size_t off, std::size_t n);
};
struct Env {
  void barrier();
  void yield();
};

inline int bad_data_across_barrier(Env* env, Payload& msg) {
  std::byte* bytes = msg.data();
  env->barrier();
  return static_cast<int>(bytes[0]);  // LINT[view-across-suspend]
}

inline void bad_view_across_yield(Env* env, Payload& msg) {
  Payload slice = Payload::view(msg, 8, 16);
  env->yield();
  (void)slice;  // LINT[view-across-suspend]
}

inline int ok_use_before_suspend(Env* env, Payload& msg) {
  std::byte* bytes = msg.data();
  const int v = static_cast<int>(bytes[0]);  // consumed before suspending
  env->barrier();
  return v;
}

}  // namespace app
