// Corpus: every rule violated but suppressed with an explicit annotation —
// proves `// apv-lint: allow(<rule>)` works on the same line and on the
// preceding line. Must lint clean. NOT compiled.

#include <cstddef>
#include <mutex>

int debug_dump_level = 0;  // apv-lint: allow(rank-global)

namespace app {

// apv-lint: allow(rank-global)
int shared_scratch[16];

inline std::mutex& m();
struct Payload {
  std::byte* data();
};
struct Env {
  void barrier();
};

inline int annotated(Env* env, Payload& msg) {
  std::lock_guard<std::mutex> lock(m());
  std::byte* bytes = msg.data();
  env->barrier();  // apv-lint: allow(lock-across-suspend)
  return static_cast<int>(bytes[0]);  // apv-lint: allow(view-across-suspend)
}

}  // namespace app
