// Corpus: idiomatic APV rank code — privatized globals via Env handles,
// locks released before suspending, views consumed before suspension.
// Must lint clean. NOT compiled (mirrors tests/test_programs.hpp idiom).

#include <cstdint>
#include <mutex>

namespace app {

constexpr int kIterations = 100;
const double kOmega = 1.8;
thread_local int tls_tagged = 0;

struct Env {
  template <typename T>
  struct Handle {
    T get() const;
    void set(const T&);
  };
  template <typename T>
  Handle<T> global(const char* name);
  int rank() const;
  void barrier();
  void compute(double s);
};

inline void* rank_main(void* arg) {
  auto* env = static_cast<Env*>(arg);
  auto my_rank = env->global<int>("my_rank");
  my_rank.set(env->rank());
  for (int i = 0; i < kIterations; ++i) {
    env->compute(0.001);
    env->barrier();
  }
  return reinterpret_cast<void*>(
      static_cast<std::intptr_t>(my_rank.get()));
}

inline int guarded_then_suspend(Env* env, std::mutex& m, int* shared) {
  int copy;
  {
    std::lock_guard<std::mutex> lock(m);
    copy = *shared;
  }
  env->barrier();
  return copy;
}

}  // namespace app
